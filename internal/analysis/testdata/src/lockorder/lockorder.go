// Fixture for the lockorder pass: a direct two-class inversion, an
// inversion split across a helper function (caught via the callee's
// acquire summary), a same-expression re-lock, and properly nested
// counter-examples.
package lockorder

import "sync"

type alpha struct{ mu sync.Mutex }
type beta struct{ mu sync.Mutex }

// abOrder and baOrder together close a cycle alpha.mu <-> beta.mu; both
// edges are reported at their acquisition witnesses.
func abOrder(x *alpha, y *beta) {
	x.mu.Lock()
	y.mu.Lock() // want `lock order inversion: beta.mu acquired while alpha.mu is held`
	y.mu.Unlock()
	x.mu.Unlock()
}

func baOrder(x *alpha, y *beta) {
	y.mu.Lock()
	x.mu.Lock() // want `lock order inversion: alpha.mu acquired while beta.mu is held`
	x.mu.Unlock()
	y.mu.Unlock()
}

type gamma struct{ mu sync.Mutex }
type delta struct{ mu sync.Mutex }

// lockDelta acquires delta.mu on behalf of its callers.
func lockDelta(y *delta) {
	y.mu.Lock()
	y.mu.Unlock()
}

// gammaThenDelta contributes the edge gamma.mu -> delta.mu through
// lockDelta's summary; deltaThenGamma closes the cycle directly.
func gammaThenDelta(x *gamma, y *delta) {
	x.mu.Lock()
	lockDelta(y) // want `lock order inversion: delta.mu acquired while gamma.mu is held`
	x.mu.Unlock()
}

func deltaThenGamma(x *gamma, y *delta) {
	y.mu.Lock()
	x.mu.Lock() // want `lock order inversion: gamma.mu acquired while delta.mu is held`
	x.mu.Unlock()
	y.mu.Unlock()
}

// relock deadlocks against itself: same expression, no intervening unlock.
func relock(x *alpha) {
	x.mu.Lock()
	x.mu.Lock() // want `x\.mu locked while already held`
	x.mu.Unlock()
	x.mu.Unlock()
}

type epsilon struct{ mu sync.Mutex }
type zeta struct{ mu sync.Mutex }

// nested and nestedAgain always take epsilon.mu before zeta.mu: a
// consistent order, no cycle, no findings.
func nested(x *epsilon, y *zeta) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock()
	defer y.mu.Unlock()
}

func nestedAgain(x *epsilon, y *zeta) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

// handOverHand locks two instances of one class: ordered by index at
// runtime, invisible (and deliberately unflagged) at class level.
func handOverHand(a, b *alpha) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}
