// Fixture for the revokederr pass: discarded versus handled error results
// of mpi operations.
package revokederr

import "mpi"

// bare call statements drop the error.
func discard(c *mpi.Comm, b []byte) {
	c.Send(1, 0, b) // want `result of Send is discarded`
	c.Barrier()     // want `result of Barrier is discarded`
}

// blanking the error position drops it just as hard.
func blank(c *mpi.Comm, b []byte) {
	_ = c.Send(1, 0, b) // want `error result of Send is assigned to _`
	_, _ = c.Recv(0, 0) // want `error result of Recv is assigned to _`
}

// go and defer make the result unreachable.
func goDefer(c *mpi.Comm) {
	go c.Barrier()    // want `go result of Barrier is discarded`
	defer c.Barrier() // want `defer result of Barrier is discarded`
}

// checked, compared against ErrRevoked, or propagated: clean.
func handled(c *mpi.Comm, b []byte) error {
	if err := c.Send(1, 0, b); err != nil {
		return err
	}
	if err := c.Barrier(); err == mpi.ErrRevoked {
		return err
	}
	got, err := c.Recv(0, 0)
	if err != nil {
		return err
	}
	mpi.Release(got)
	return c.Barrier()
}

// operations with no error result are not flagged: clean.
func noError(c *mpi.Comm, b []byte) {
	c.SectionEnter("s")
	mpi.Release(b)
	c.SectionExit("s")
}
