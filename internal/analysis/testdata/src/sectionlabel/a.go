// Fixture for the sectionlabel pass: constant, empty, dynamic, reserved,
// and codec-hostile labels.
package sectionlabel

import (
	"fmt"

	"mpi"
)

const secGood = "good"

func labels(c *mpi.Comm, i int) {
	c.SectionEnter(secGood) // named constant: clean
	c.SectionExit(secGood)
	c.SectionEnter("literal") // literal: clean
	c.SectionExit("literal")
	c.SectionEnter("")                        // want `SectionEnter label must not be empty`
	c.SectionExit("")                         // want `SectionExit label must not be empty`
	c.SectionEnter(fmt.Sprintf("step-%d", i)) // want `SectionEnter label is not a constant string`
	c.SectionExit("MPI_MAIN")                 // want `SectionExit label "MPI_MAIN" is reserved for the runtime's root section`
	c.SectionEnter("a,b")                     // want `SectionEnter label "a,b" contains characters reserved by the trace CSV codec`
}

func wrapper(c *mpi.Comm, dyn string) error {
	if err := c.Section(dyn, work); err != nil { // want `Section label is not a constant string`
		return err
	}
	return c.Section(secGood, work) // clean
}

func work() error { return nil }
