// Fixture for the useafterrelease pass: the mpi.Release ownership
// contract over straight-line code, branches, loops, and range loops.
package useafterrelease

import "mpi"

// read after release.
func useAfter(c *mpi.Comm) (int, error) {
	b, err := c.Recv(0, 1)
	if err != nil {
		return 0, err
	}
	n := len(b)
	mpi.Release(b)
	return n + int(b[0]), nil // want `use of b after mpi.Release`
}

// write after release.
func writeAfter(c *mpi.Comm) error {
	b, err := c.Recv(0, 1)
	if err != nil {
		return err
	}
	mpi.Release(b)
	b[0] = 1 // want `use of b after mpi.Release`
	return nil
}

// releasing twice pools the buffer twice.
func double(c *mpi.Comm) error {
	b, err := c.Recv(0, 1)
	if err != nil {
		return err
	}
	mpi.Release(b)
	mpi.Release(b) // want `double mpi.Release of b`
	return nil
}

// releasing a reslice releases the backing buffer.
func reslice(c *mpi.Comm) (byte, error) {
	b, err := c.Recv(0, 1)
	if err != nil {
		return 0, err
	}
	mpi.Release(b[:1])
	return b[0], nil // want `use of b after mpi.Release`
}

// released on one arm counts as released after the join.
func branch(c *mpi.Comm, cond bool) (int, error) {
	b, err := c.Recv(0, 1)
	if err != nil {
		return 0, err
	}
	if cond {
		mpi.Release(b)
	}
	return len(b), nil // want `use of b after mpi.Release`
}

// a use at the top of the next iteration sees the release at the bottom of
// the previous one.
func loopCarry(c *mpi.Comm, n int) error {
	b, err := c.Recv(0, 1)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		_ = b[0] // want `use of b after mpi.Release`
		mpi.Release(b)
	}
	return nil
}

// reassignment makes the variable a fresh buffer: clean.
func reassign(c *mpi.Comm) (byte, error) {
	b, err := c.Recv(0, 1)
	if err != nil {
		return 0, err
	}
	mpi.Release(b)
	b, err = c.Recv(0, 2)
	if err != nil {
		return 0, err
	}
	x := b[0]
	mpi.Release(b)
	return x, nil
}

// use before release: clean.
func useBefore(c *mpi.Comm) (int, error) {
	b, err := c.Recv(0, 1)
	if err != nil {
		return 0, err
	}
	n := len(b)
	mpi.Release(b)
	return n, nil
}

// deferred release runs at return, after every use: clean.
func deferRelease(c *mpi.Comm) (int, error) {
	b, err := c.Recv(0, 1)
	if err != nil {
		return 0, err
	}
	defer mpi.Release(b)
	return len(b), nil
}

// the range variable is rebound every iteration: clean.
func gatherParts(c *mpi.Comm) (int, error) {
	parts, err := c.Gather(0, nil)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, raw := range parts {
		total += len(raw)
		mpi.Release(raw)
	}
	return total, nil
}
