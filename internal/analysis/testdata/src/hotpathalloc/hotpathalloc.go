// Fixture for the hotpathalloc pass: positive cases cover every allocation
// construct the pass knows, negative cases cover the sanctioned idioms
// (self-append, pooling, atomics, cold error returns, panic arguments) and
// the allocs-ok escape hatches.
package hotpathalloc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mpi"
)

type point struct{ x, y int }

//seclint:hotpath
func hotMake(n int) []byte {
	return make([]byte, n) // want `make allocates`
}

//seclint:hotpath
func hotNew() *point {
	return new(point) // want `new allocates`
}

//seclint:hotpath
func hotSliceLit() {
	xs := []int{1, 2} // want `slice literal allocates`
	_ = xs
}

//seclint:hotpath
func hotMapLit() {
	m := map[string]int{} // want `map literal allocates`
	_ = m
}

//seclint:hotpath
func hotEscape() *point {
	return &point{1, 2} // want `address-taken composite literal escapes to the heap`
}

//seclint:hotpath
func hotValueStruct() point {
	return point{1, 2} // by-value struct literal stays on the stack
}

//seclint:hotpath
func hotClosure() {
	f := func() {} // want `closure allocates`
	_ = f
}

//seclint:hotpath
func hotAppendForeign(dst, src []byte) []byte {
	out := append(dst, src...) // want `append into a different slice allocates`
	return out
}

//seclint:hotpath
func hotAppendSelf(buf, data []byte) []byte {
	buf = append(buf[:0], data...) // amortized scratch reuse: allowed
	return buf
}

//seclint:hotpath
func hotMapWrite(m map[string]int) {
	m["k"] = 1 // want `map write may grow the map`
}

//seclint:hotpath
func hotConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//seclint:hotpath
func hotConv(b []byte) string {
	return string(b) // want `conversion string\(\.\.\.\) copies and allocates`
}

func sink(v any) { _ = v }

//seclint:hotpath
func hotBox(n int, p *int) {
	sink(n) // want `interface boxing of int value allocates`
	sink(p) // pointer-shaped: stored directly in the interface word
}

func varargs(xs ...int) int { return len(xs) }

//seclint:hotpath
func hotVariadic() int {
	return varargs(1, 2) // want `variadic call allocates its argument slice`
}

//seclint:hotpath
func hotSpread(xs []int) int {
	return varargs(xs...) // spread reuses the existing slice
}

//seclint:hotpath
func hotGo() {
	go varargs() // want `go statement allocates a goroutine`
}

//seclint:hotpath
func hotDeferLoop(mu *sync.Mutex) {
	for i := 0; i < 3; i++ {
		mu.Lock()
		defer mu.Unlock() // want `defer inside a loop heap-allocates its frame`
	}
}

type doer interface{ do() }

//seclint:hotpath
func hotIface(d doer) {
	d.do() // want `dynamic call do through interface cannot be proven allocation-free`
}

//seclint:hotpath
func hotFnValue(f func()) {
	f() // want `dynamic call through a function value cannot be proven allocation-free`
}

//seclint:hotpath
func hotExternal() string {
	return fmt.Sprintf("x") // want `call to fmt.Sprintf is not known to be allocation-free`
}

//seclint:hotpath
func hotWhitelisted(mu *sync.Mutex, ctr *int64) {
	mu.Lock()
	atomic.AddInt64(ctr, 1)
	mu.Unlock()
}

//seclint:hotpath
func hotColdReturn(ok bool) error {
	if !ok {
		return fmt.Errorf("bad state %d", 1) // cold: constructs the error it returns
	}
	return nil
}

//seclint:hotpath
func hotPanicArg(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative %d", n)) // panic never executes in steady state
	}
}

// helperAlloc is pulled onto the hot path transitively.
func helperAlloc() []int {
	return make([]int, 4) // want `make allocates \(reachable from //seclint:hotpath hotpathalloc.hotRoot\)`
}

//seclint:allocs-ok one-time bring-up, measured cold
func coldLeaf() []int {
	return make([]int, 4) // trusted leaf: not visited
}

//seclint:hotpath
func hotRoot() {
	helperAlloc()
	coldLeaf()
}

//seclint:hotpath
func hotLineSuppressed() {
	//seclint:allocs-ok pool-miss slow path, amortized by reuse
	_ = make([]int, 4)
}

//seclint:hotpath
func hotPing(c *mpi.Comm, peer int, payload []byte) error {
	if err := c.Send(peer, 0, payload); err != nil {
		return err
	}
	b, err := c.Recv(peer, 0)
	if err != nil {
		return err
	}
	mpi.Release(b)
	return nil
}
