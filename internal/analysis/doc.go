// Package analysis implements seclint's static correctness suite for code
// built on the repro mpi runtime: five syntactic go/analysis-style passes,
// three interprocedural dataflow passes, and the stdlib-only loader and
// program builder that drive them (the build environment vendors no
// third-party modules, so the package carries its own driver instead of
// depending on golang.org/x/tools; the Analyzer/Pass/Diagnostic surface is
// kept source-compatible with the upstream framework).
//
// The passes enforce the contracts the paper's speedup methodology rests
// on — sections that nest and match across ranks, buffers that are not
// touched after release, collectives every rank reaches in the same order —
// at compile time. Its runtime twin is internal/verify, which checks the
// same contracts on live executions.
//
// # sectionpair
//
// Every SectionEnter must be closed by a SectionExit with the same label on
// every path out of the function, and exits must close the innermost open
// section (perfect nesting). A deferred exit counts. Flagged:
//
//	c.SectionEnter("halo")
//	if err != nil {
//		return err // "halo" never exited on this path
//	}
//	c.SectionExit("halo")
//
// Clean:
//
//	c.SectionEnter("halo")
//	defer c.SectionExit("halo")
//	if err != nil {
//		return err
//	}
//
// # sectionlabel
//
// Labels must be compile-time constant strings (a literal or a named
// constant), non-empty, free of the trace codec's reserved characters, and
// not the runtime's reserved MPI_MAIN root label. Flagged:
//
//	c.SectionEnter(fmt.Sprintf("step-%d", i)) // dynamic label
//
// Clean:
//
//	const secStep = "step"
//	c.SectionEnter(secStep)
//
// # useafterrelease
//
// A buffer passed to mpi.Release belongs to the runtime again; reading or
// writing it afterwards races with an unrelated future message. Flagged:
//
//	mpi.Release(buf)
//	sum += buf[0] // use after release
//
// Clean:
//
//	sum += buf[0]
//	mpi.Release(buf)
//	buf = nil
//
// # collectiveorder
//
// Collectives (Barrier, Bcast, Reduce, Agree, SectionEnter, ...) reached
// only under a rank-dependent condition are entered by some ranks and not
// others — the classic divergence deadlock. Flagged:
//
//	if c.Rank() == 0 {
//		c.Barrier() // ranks != 0 never arrive
//	}
//
// Clean:
//
//	c.Barrier()
//	if c.Rank() == 0 {
//		log.Print("all ranks past the barrier")
//	}
//
// # revokederr
//
// Error results of mpi operations must be handled or propagated: since the
// runtime gained revoke semantics, any operation can return mpi.ErrRevoked,
// and a discarded error turns a recoverable revocation into silent data
// corruption. Flagged:
//
//	c.Send(dst, tag, buf) // error discarded
//
// Clean:
//
//	if err := c.Send(dst, tag, buf); err != nil {
//		return err
//	}
//
// # The dataflow passes
//
// The three remaining passes are interprocedural: instead of a per-package
// Run over raw syntax they implement RunProgram and receive a Program — a
// whole-compilation view built once per seclint invocation (callgraph.go)
// with a function table keyed by *types.Func, resolved static call edges,
// and a per-body control-flow graph on demand (cfg.go). Directives of the
// form //seclint:<verb> attach to functions and lines during program
// construction; every directive must carry a justification after the
// marker, enforced by the driver itself.
//
// To write a new dataflow pass, set Analyzer.RunProgram instead of Run.
// The pass receives a *ProgramPass whose Program exposes the whole-program
// API: Funcs() iterates every declared function and method in a stable
// order; FuncOf maps a *types.Func to its *Func (nil for functions without
// source); f.Calls holds the resolved CallSites of a body (static callees,
// plus Dynamic markers for interface and function-value dispatch);
// f.CFG() builds the control-flow graph lazily, and CFG.ExecutesBefore
// answers intra-procedural ordering questions ("can this Recv run before
// any Send?"). Fixpoint summaries over f.Calls are the idiom for
// transitive facts — both commdeadlock's collective sets and lockorder's
// acquisition summaries iterate until stable. Report through
// ProgramPass.Reportf; the driver applies //seclint:disable and line
// suppression, then sorts all findings by position, so passes need no
// ordering discipline of their own.
//
// # hotpathalloc
//
// Functions marked //seclint:hotpath — and everything statically reachable
// from them — must be heap-allocation-free. The pass walks the call graph
// from each root and flags make/new, composite literals that escape,
// closures, map writes, string concatenation, interface boxing of
// non-pointer-shaped values, variadic calls, defer-in-loop, go statements,
// and calls it cannot see into (dynamic dispatch, unlisted externals).
// Amortized or cold code inside a hot region is waived explicitly:
//
//	//seclint:allocs-ok pool miss: amortized by recycling
//	return make([]byte, n, 1<<(c+minClassBits))
//
// A function-level //seclint:allocs-ok makes the whole callee a trusted
// leaf (lazy bring-up paths, failure handling); a line-level one waives
// its own line and the next. Both demand a reason, which is the reviewable
// artifact: every waiver states why the allocation does not break the
// 0 allocs/op contract the runtime's AllocsPerRun tests pin dynamically.
//
// # commdeadlock
//
// Builds a static communication graph from Send/Recv/Sendrecv call sites,
// tracking peer expressions symbolically (rank±k, rank^k, constants).
// Flagged: receives from the caller's own rank that no prior self-send can
// satisfy; symmetric exchanges that Recv before Send on both sides (every
// rank blocks; use Sendrecv or send first); program-wide tag mismatches
// where a constant-tag Send (or Recv) has no possible constant-tag
// counterpart; and calls under rank-dependent branches whose transitive
// callees perform collectives — interprocedural divergence the syntactic
// collectiveorder pass cannot see.
//
// # lockorder
//
// Infers the mutex acquisition order across the call graph: lock events
// are classified by "Type.field" or "pkg.var" class, held-sets propagate
// through a path-sensitive CFG walk (transitive callee acquisitions
// included), and any two classes acquired in both orders close a cycle in
// the lock-order graph — a latent AB/BA deadlock. Re-locking the same
// mutex expression while held is reported as a self-deadlock. Hand-over-
// hand locking within one sharded class is exempt.
//
// All passes match mpi entry points by package name ("mpi"), so the suite
// checks the in-tree runtime, user code importing it, and the test fixtures
// under testdata alike. Findings render as go vet text or as SARIF 2.1.0
// (sarif.go) and can be filtered through a committed suppression baseline
// (baseline.go); both orders are deterministic regardless of package load
// order.
package analysis
