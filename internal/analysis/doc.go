// Package analysis implements seclint's static correctness suite for code
// built on the repro mpi runtime: five go/analysis-style passes plus the
// stdlib-only loader that drives them (the build environment vendors no
// third-party modules, so the package carries its own driver instead of
// depending on golang.org/x/tools; the Analyzer/Pass/Diagnostic surface is
// kept source-compatible with the upstream framework).
//
// The passes enforce the contracts the paper's speedup methodology rests
// on — sections that nest and match across ranks, buffers that are not
// touched after release, collectives every rank reaches in the same order —
// at compile time. Its runtime twin is internal/verify, which checks the
// same contracts on live executions.
//
// # sectionpair
//
// Every SectionEnter must be closed by a SectionExit with the same label on
// every path out of the function, and exits must close the innermost open
// section (perfect nesting). A deferred exit counts. Flagged:
//
//	c.SectionEnter("halo")
//	if err != nil {
//		return err // "halo" never exited on this path
//	}
//	c.SectionExit("halo")
//
// Clean:
//
//	c.SectionEnter("halo")
//	defer c.SectionExit("halo")
//	if err != nil {
//		return err
//	}
//
// # sectionlabel
//
// Labels must be compile-time constant strings (a literal or a named
// constant), non-empty, free of the trace codec's reserved characters, and
// not the runtime's reserved MPI_MAIN root label. Flagged:
//
//	c.SectionEnter(fmt.Sprintf("step-%d", i)) // dynamic label
//
// Clean:
//
//	const secStep = "step"
//	c.SectionEnter(secStep)
//
// # useafterrelease
//
// A buffer passed to mpi.Release belongs to the runtime again; reading or
// writing it afterwards races with an unrelated future message. Flagged:
//
//	mpi.Release(buf)
//	sum += buf[0] // use after release
//
// Clean:
//
//	sum += buf[0]
//	mpi.Release(buf)
//	buf = nil
//
// # collectiveorder
//
// Collectives (Barrier, Bcast, Reduce, Agree, SectionEnter, ...) reached
// only under a rank-dependent condition are entered by some ranks and not
// others — the classic divergence deadlock. Flagged:
//
//	if c.Rank() == 0 {
//		c.Barrier() // ranks != 0 never arrive
//	}
//
// Clean:
//
//	c.Barrier()
//	if c.Rank() == 0 {
//		log.Print("all ranks past the barrier")
//	}
//
// # revokederr
//
// Error results of mpi operations must be handled or propagated: since the
// runtime gained revoke semantics, any operation can return mpi.ErrRevoked,
// and a discarded error turns a recoverable revocation into silent data
// corruption. Flagged:
//
//	c.Send(dst, tag, buf) // error discarded
//
// Clean:
//
//	if err := c.Send(dst, tag, buf); err != nil {
//		return err
//	}
//
// All passes match mpi entry points by package name ("mpi"), so the suite
// checks the in-tree runtime, user code importing it, and the test fixtures
// under testdata alike.
package analysis
