package analysis

import (
	"bytes"
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

func sampleFindings(t *testing.T) []Finding {
	t.Helper()
	return []Finding{
		{
			Analyzer: "hotpathalloc",
			Pos:      token.Position{Filename: "/repo/internal/mpi/p2p.go", Line: 42, Column: 7},
			Message:  "alloc on hot path in mpi.(Comm).Send: make allocates",
		},
		{
			Analyzer: "commdeadlock",
			Pos:      token.Position{Filename: "/repo/internal/serve/sweep.go", Line: 9, Column: 2},
			Message:  "Recv from the caller's own rank can execute before any Send to self; no other rank can satisfy it",
		},
		{
			Analyzer: "seclint",
			Pos:      token.Position{Filename: "/repo/internal/mpi/comm.go", Line: 3, Column: 1},
			Message:  "seclint:allocs-ok without a justification: add a reason after the marker",
		},
	}
}

// TestSARIFGolden pins the rendered SARIF document byte-for-byte: rule
// table sorted by id and covering all eight passes plus the directive
// meta-rule, repo-relative artifact URIs, and stable field order. Any
// schema drift shows up as a golden diff (regenerate with -update).
func TestSARIFGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, All(), sampleFindings(t), "/repo"); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	golden := filepath.Join("testdata", "sarif.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output differs from %s (re-run with -update after auditing the diff)\ngot:\n%s", golden, buf.String())
	}
}

// TestSARIFDeterministic renders the same findings twice and demands
// identical bytes — json maps or unsorted rule tables would break this.
func TestSARIFDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteSARIF(&a, All(), sampleFindings(t), "/repo"); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	if err := WriteSARIF(&b, All(), sampleFindings(t), "/repo"); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renderings of the same findings differ")
	}
}

// TestBaselineRoundTrip: a baseline generated from a finding set
// suppresses exactly that set — no more — and survives the write/read
// cycle used by -write-baseline / -baseline.
func TestBaselineRoundTrip(t *testing.T) {
	findings := sampleFindings(t)
	// Duplicate one finding (different line, same message) to exercise
	// the count coalescing: one entry with Count=2 must absorb both.
	dup := findings[0]
	dup.Pos.Line = 99
	findings = append(findings, dup)

	b := NewBaseline(findings, "/repo")
	if len(b.Findings) != 3 {
		t.Fatalf("coalesced baseline has %d entries, want 3", len(b.Findings))
	}

	path := filepath.Join(t.TempDir(), "baseline.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteTo(f); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rb, err := ReadBaseline(path)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}

	kept, suppressed := rb.Filter(findings, "/repo")
	if len(kept) != 0 || suppressed != len(findings) {
		t.Errorf("baseline over its own findings: kept %d suppressed %d, want 0/%d", len(kept), suppressed, len(findings))
	}

	// A third identical finding exceeds the entry's count budget.
	extra := append(append([]Finding(nil), findings...), dup)
	kept, suppressed = rb.Filter(extra, "/repo")
	if len(kept) != 1 || suppressed != len(findings) {
		t.Errorf("over-budget finding: kept %d suppressed %d, want 1/%d", len(kept), suppressed, len(findings))
	}

	// A genuinely new finding passes through in order.
	novel := Finding{Analyzer: "lockorder", Pos: token.Position{Filename: "/repo/a.go", Line: 1}, Message: "new"}
	kept, _ = rb.Filter(append([]Finding{novel}, findings...), "/repo")
	if len(kept) != 1 || kept[0].Message != "new" {
		t.Errorf("novel finding not kept: %v", kept)
	}
}

// TestReadBaselineMissing: a missing baseline file is an empty baseline.
func TestReadBaselineMissing(t *testing.T) {
	b, err := ReadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("missing baseline should not error: %v", err)
	}
	kept, suppressed := b.Filter(sampleFindings(t), "/repo")
	if suppressed != 0 || len(kept) != 3 {
		t.Errorf("empty baseline filtered findings: kept %d suppressed %d", len(kept), suppressed)
	}
}

// TestDeterministicOrder is the load-order regression test: the same
// fixture packages analyzed in opposite orders must yield the identical
// findings sequence, because Run sorts packages and findings itself.
func TestDeterministicOrder(t *testing.T) {
	src := filepath.Join("testdata", "src")
	forward, err := Load(LoadConfig{Dir: src, SrcRoot: src, Tests: true}, "commdeadlock", "lockorder")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	reverse, err := Load(LoadConfig{Dir: src, SrcRoot: src, Tests: true}, "lockorder", "commdeadlock")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	// Reverse the slice too, in case Load already normalizes.
	for i, j := 0, len(reverse)-1; i < j; i, j = i+1, j-1 {
		reverse[i], reverse[j] = reverse[j], reverse[i]
	}
	ff, err := Run(forward, All())
	if err != nil {
		t.Fatalf("run forward: %v", err)
	}
	rf, err := Run(reverse, All())
	if err != nil {
		t.Fatalf("run reverse: %v", err)
	}
	if len(ff) == 0 {
		t.Fatal("fixtures produced no findings; the regression test is vacuous")
	}
	if len(ff) != len(rf) {
		t.Fatalf("forward %d findings, reverse %d", len(ff), len(rf))
	}
	for i := range ff {
		if ff[i] != rf[i] {
			t.Errorf("finding %d differs by load order:\n  forward: %s\n  reverse: %s", i, ff[i], rf[i])
		}
	}
}
