package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// SARIF rendering. The structs below are the subset of the SARIF 2.1.0
// object model that code-scanning consumers (GitHub code scanning, VS
// Code SARIF viewers) require: one run, one driver, a rule per pass, and
// a physical location per result. Field order is fixed by the struct
// definitions and rules are sorted by id, so the rendered document is
// byte-for-byte deterministic for a given finding set — the property the
// golden test pins and the CI gate diffs against.

const sarifSchema = "https://json.schemastore.org/sarif-2.1.0.json"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// directiveRuleDoc describes the implicit "seclint" meta-rule: findings
// the driver itself emits for malformed //seclint: directives. It is not
// an Analyzer, but its findings need a rule entry like any other.
const directiveRuleDoc = "report seclint control comments that lack a justification"

// relArtifact rewrites an absolute finding path to a slash-separated
// path relative to baseDir, the form code-scanning uploads expect. Paths
// outside baseDir (or when baseDir is empty) pass through unchanged
// apart from slash normalization.
func relArtifact(path, baseDir string) string {
	if baseDir != "" {
		if rel, err := filepath.Rel(baseDir, path); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(path)
}

// WriteSARIF renders findings as a single-run SARIF 2.1.0 document. The
// rule table lists every analyzer (plus the implicit directive rule)
// sorted by id, whether or not it fired, so a clean run still documents
// which passes were in force. File paths are rewritten relative to
// baseDir.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, findings []Finding, baseDir string) error {
	docs := map[string]string{"seclint": directiveRuleDoc}
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		docs[a.Name] = doc
	}
	// Findings may name a pass outside analyzers (a subset run replaying
	// a full-run baseline, say); give those a rule entry too.
	for _, f := range findings {
		if _, ok := docs[f.Analyzer]; !ok {
			docs[f.Analyzer] = ""
		}
	}
	ids := make([]string, 0, len(docs))
	for id := range docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	index := make(map[string]int, len(ids))
	rules := make([]sarifRule, len(ids))
	for i, id := range ids {
		index[id] = i
		rules[i] = sarifRule{ID: id, ShortDescription: sarifMessage{Text: docs[id]}}
	}

	results := make([]sarifResult, len(findings))
	for i, f := range findings {
		results[i] = sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: index[f.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relArtifact(f.Pos.Filename, baseDir)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		}
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "seclint",
				Rules: rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
