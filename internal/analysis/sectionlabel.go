package analysis

import (
	"go/ast"
	"strings"
)

// Sectionlabel checks the label argument of every SectionEnter/SectionExit
// (and the Section convenience wrapper, when present): labels must be
// compile-time constant strings, non-empty, free of the characters the
// trace CSV codec reserves, and must not collide with the runtime's
// reserved MPI_MAIN root section.
var Sectionlabel = &Analyzer{
	Name: "sectionlabel",
	Doc: "check that section labels are constant, non-empty, and not reserved\n\n" +
		"Section labels feed the canonical-sequence checker and the trace\n" +
		"codec; a dynamic, empty, or reserved label breaks cross-rank\n" +
		"matching in ways that only surface as runtime panics.",
	Run: runSectionlabel,
}

// mainSectionLabel mirrors mpi.MainSection; the analyzer cannot import the
// runtime (it must also check fixture packages), so the contract constant
// is restated here.
const mainSectionLabel = "MPI_MAIN"

func runSectionlabel(pass *Pass) error {
	inMPI := pass.Pkg != nil && pass.Pkg.Name() == mpiPkgName
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := mpiCall(pass, call)
			if !ok {
				return true
			}
			switch name {
			case "SectionEnter", "SectionExit", "Section":
			default:
				return true
			}
			if len(call.Args) < 1 {
				return true
			}
			arg := call.Args[0]
			label, ok := constantLabel(pass, arg)
			if !ok {
				// Only flag expressions that are actually strings; the
				// first argument of an unrelated same-named method on a
				// non-string parameter should not trip the pass. The mpi
				// runtime itself is exempt: its Section wrapper forwards
				// a caller-supplied label by design.
				if tv, found := pass.TypesInfo.Types[arg]; found && isString(tv.Type) && !inMPI {
					pass.Reportf(arg.Pos(), "%s label is not a constant string: cross-rank section matching requires identical literal labels", name)
				}
				return true
			}
			if label == "" {
				pass.Reportf(arg.Pos(), "%s label must not be empty", name)
				return true
			}
			if label == mainSectionLabel && !inMPI {
				pass.Reportf(arg.Pos(), "%s label %q is reserved for the runtime's root section", name, label)
				return true
			}
			if strings.ContainsAny(label, ",\n") {
				pass.Reportf(arg.Pos(), "%s label %q contains characters reserved by the trace CSV codec", name, label)
			}
			return true
		})
	}
	return nil
}
