package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder infers the program's mutex acquisition order and reports
// inversions. Locks are grouped into classes by where they live — the
// owning named type and field ("boxShard.mu", "sectionRegistry.mu") or the
// package-level variable — because the sharded runtime multiplies each
// field into many instances and it is the class-level order that makes
// cross-shard deadlock impossible.
//
// Within a function, a CFG walk tracks the held set path-sensitively:
// acquiring B while holding A records the edge A→B with both witness
// positions. Across functions, each callee contributes its transitive
// acquire set at every call site, so an inversion split over helper
// functions is still a cycle in the final graph. Any edge that sits on a
// cycle is reported.
//
// Same-class edges are deliberately ignored: locking two shards of one
// class is the sharded runtime's hand-over-hand idiom and is ordered by
// index at runtime, which a class-level analysis cannot see. What it can
// see — re-locking the same syntactic expression with no intervening
// unlock — is reported as a self-deadlock.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "infer mutex acquisition order across the call graph and flag inversions\n\n" +
		"Groups locks into classes (owning type + field), tracks held sets\n" +
		"through each function's CFG and callee summaries, builds the\n" +
		"program-wide lock-order graph, and reports every edge on a cycle\n" +
		"plus same-expression re-locks.",
	RunProgram: runLockOrder,
}

// lockMethods classifies the sync acquisition/release entry points.
var lockAcquire = map[string]bool{
	"sync.(*Mutex).Lock":    true,
	"sync.(*RWMutex).Lock":  true,
	"sync.(*RWMutex).RLock": true,
}
var lockRelease = map[string]bool{
	"sync.(*Mutex).Unlock":    true,
	"sync.(*RWMutex).Unlock":  true,
	"sync.(*RWMutex).RUnlock": true,
}

// lockEvent is one lock-relevant action inside a CFG node, in source order.
type lockEvent struct {
	pos     token.Pos
	class   string // lock class; empty for plain calls
	expr    string // syntactic receiver, object-ish identity within a function
	acquire bool
	release bool
	callee  *Func // in-program call target, for summary application
}

// orderEdge records "to acquired while from was held", with witnesses.
type orderEdge struct {
	acquirePos token.Pos // where `to` was acquired (or the call that acquires it)
	heldPos    token.Pos // where `from` was acquired
}

func runLockOrder(pp *ProgramPass) error {
	prog := pp.Program

	// Transitive acquire summaries: class set each function may lock,
	// directly or through static callees. Fixpoint over the call graph.
	acquires := map[*Func]map[string]bool{}
	events := map[*Func][][]lockEvent{} // per CFG block
	for _, f := range prog.Funcs() {
		events[f] = collectLockEvents(f)
		set := map[string]bool{}
		for _, blk := range events[f] {
			for _, ev := range blk {
				if ev.acquire {
					set[ev.class] = true
				}
			}
		}
		if len(set) > 0 {
			acquires[f] = set
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range prog.Funcs() {
			for _, blk := range events[f] {
				for _, ev := range blk {
					if ev.callee == nil {
						continue
					}
					for c := range acquires[ev.callee] {
						set := acquires[f]
						if set == nil {
							set = map[string]bool{}
							acquires[f] = set
						}
						if !set[c] {
							set[c] = true
							changed = true
						}
					}
				}
			}
		}
	}

	// Path-sensitive held-set walk per function; collect order edges.
	edges := map[string]map[string]orderEdge{}
	addEdge := func(from, to string, e orderEdge) {
		if from == to {
			return // same-class: sharded hand-over-hand, ordered by index
		}
		m := edges[from]
		if m == nil {
			m = map[string]orderEdge{}
			edges[from] = m
		}
		if old, ok := m[to]; !ok || e.acquirePos < old.acquirePos {
			m[to] = e
		}
	}
	for _, f := range prog.Funcs() {
		walkHeldSets(pp, f, events[f], acquires, addEdge)
	}

	// Report every edge that sits on a cycle, deterministically.
	classes := make([]string, 0, len(edges))
	for c := range edges {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, from := range classes {
		tos := make([]string, 0, len(edges[from]))
		for to := range edges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if !reaches(edges, to, from) {
				continue
			}
			e := edges[from][to]
			rev := ""
			if back, ok := edges[to][from]; ok {
				rev = "; the reverse order is at " + prog.Fset.Position(back.acquirePos).String()
			}
			pp.Reportf(e.acquirePos,
				"lock order inversion: %s acquired while %s is held (held since %s), closing a cycle in the lock-order graph%s",
				to, from, prog.Fset.Position(e.heldPos).String(), rev)
		}
	}
	return nil
}

// reaches reports whether `from` can reach `to` along order edges.
func reaches(edges map[string]map[string]orderEdge, from, to string) bool {
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range edges[c] {
			if next == to {
				return true
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// collectLockEvents extracts lock-relevant events per CFG block, in source
// order. Deferred unlocks release at function exit and contribute no
// event; deferred calls likewise.
func collectLockEvents(f *Func) [][]lockEvent {
	g := f.CFG()
	sites := map[*ast.CallExpr]CallSite{}
	for _, s := range f.Calls {
		sites[s.Call] = s
	}
	out := make([][]lockEvent, len(g.Blocks))
	for i, blk := range g.Blocks {
		var evs []lockEvent
		for _, node := range blk.Nodes {
			inspectShallow(node, func(n ast.Node) bool {
				if _, isDefer := n.(*ast.DeferStmt); isDefer {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				site, ok := sites[call]
				if !ok || site.CalleeObj == nil {
					return true
				}
				key := externalKey(site.CalleeObj)
				switch {
				case lockAcquire[key] || lockRelease[key]:
					sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
					if !ok {
						return true
					}
					class, expr := lockClass(f, sel.X)
					evs = append(evs, lockEvent{pos: call.Pos(), class: class, expr: expr,
						acquire: lockAcquire[key], release: lockRelease[key]})
				case site.Callee != nil:
					evs = append(evs, lockEvent{pos: call.Pos(), callee: site.Callee})
				}
				return true
			})
		}
		sort.Slice(evs, func(a, b int) bool { return evs[a].pos < evs[b].pos })
		out[i] = evs
	}
	return out
}

// lockClass names the lock: class is the owning named type plus field (or
// package-qualified variable), expr is the receiver text for
// same-expression identity within one function.
func lockClass(f *Func, recv ast.Expr) (class, expr string) {
	recv = ast.Unparen(recv)
	expr = types.ExprString(recv)
	info := f.Pkg.Info
	if sel, ok := recv.(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok && tv.Type != nil {
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + sel.Sel.Name, expr
			}
		}
		return expr, expr
	}
	if id, ok := recv.(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Name() + "." + id.Name, expr
		}
	}
	return expr, expr
}

// heldLock is one entry of the path-sensitive held set.
type heldLock struct {
	class string
	expr  string
	pos   token.Pos
}

// walkHeldSets runs the held-set dataflow over f's CFG, reporting
// same-expression re-locks and recording order edges (including edges into
// callee acquire sets).
func walkHeldSets(pp *ProgramPass, f *Func, blocks [][]lockEvent, acquires map[*Func]map[string]bool, addEdge func(from, to string, e orderEdge)) {
	g := f.CFG()
	const maxVisitsPerBlock = 4
	visits := make([]int, len(g.Blocks))
	reported := map[token.Pos]bool{} // the revisit cap would duplicate findings

	var walk func(blk *Block, held []heldLock)
	walk = func(blk *Block, held []heldLock) {
		if visits[blk.Index] >= maxVisitsPerBlock {
			return
		}
		visits[blk.Index]++
		held = append([]heldLock(nil), held...)
		for _, ev := range blocks[blk.Index] {
			switch {
			case ev.acquire:
				for _, h := range held {
					if h.expr == ev.expr && !reported[ev.pos] {
						reported[ev.pos] = true
						pp.Reportf(ev.pos,
							"%s locked while already held (locked at %s); this goroutine deadlocks against itself",
							ev.expr, pp.Program.Fset.Position(h.pos).String())
					}
					addEdge(h.class, ev.class, orderEdge{acquirePos: ev.pos, heldPos: h.pos})
				}
				held = append(held, heldLock{class: ev.class, expr: ev.expr, pos: ev.pos})
			case ev.release:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].expr == ev.expr {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case ev.callee != nil:
				for c := range acquires[ev.callee] {
					for _, h := range held {
						addEdge(h.class, c, orderEdge{acquirePos: ev.pos, heldPos: h.pos})
					}
				}
			}
		}
		for _, s := range blk.Succs {
			if s != nil {
				walk(s, held)
			}
		}
	}
	walk(g.Entry, nil)
}
