package analysis

import (
	"go/ast"
	"go/types"
)

// collectiveNames is the set of mpi entry points every rank of a
// communicator must reach in the same order. SectionEnter/SectionExit are
// included: the paper's section contract makes them collective over the
// communicator too.
var collectiveNames = map[string]bool{
	"Barrier":          true,
	"Bcast":            true,
	"Reduce":           true,
	"Allreduce":        true,
	"ReduceFloat64":    true,
	"AllreduceFloat64": true,
	"Gather":           true,
	"Allgather":        true,
	"Scatter":          true,
	"Alltoall":         true,
	"Scan":             true,
	"Exscan":           true,
	"Split":            true,
	"Dup":              true,
	"Shrink":           true,
	"Agree":            true,
	"CartCreate":       true,
	"SectionEnter":     true,
	"SectionExit":      true,
}

// CollectiveOrder flags collective calls that are only reached when a
// rank-dependent condition holds: if `comm.Rank() == 0` guards a Barrier,
// rank 0 enters the collective and every other rank does not, and the
// program deadlocks (or, under revoke semantics, aborts) at scale.
var CollectiveOrder = &Analyzer{
	Name: "collectiveorder",
	Doc: "flag collectives reached under rank-dependent branches\n\n" +
		"All ranks of a communicator must call collectives (Barrier, Bcast,\n" +
		"Reduce, Agree, SectionEnter, ...) in the same order. A collective\n" +
		"lexically inside a branch whose condition depends on Rank() is\n" +
		"reached by some ranks and not others — the classic divergence\n" +
		"deadlock.",
	Run: runCollectiveOrder,
}

type coChecker struct {
	pass *Pass
	// rankVars holds variables assigned (anywhere in the package) from an
	// expression containing Rank(); a condition mentioning one is
	// rank-dependent even when the Rank() call itself is out of line.
	rankVars map[types.Object]bool
}

func runCollectiveOrder(pass *Pass) error {
	c := &coChecker{pass: pass, rankVars: map[types.Object]bool{}}
	// Pass 1: collect rank-derived variables (r := comm.Rank()).
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if !c.exprMentionsRank(rhs) {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
						c.rankVars[obj] = true
					} else if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
						c.rankVars[obj] = true
					}
				}
			}
			return true
		})
	}
	// Pass 2: flag collectives inside rank-dependent branch bodies.
	funcBodies(pass.Files, func(body *ast.BlockStmt) {
		c.walk(body, false)
	})
	return nil
}

// walk visits statements; rankDep is true while inside a branch whose
// condition depends on the rank.
func (c *coChecker) walk(n ast.Node, rankDep bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.BlockStmt:
		for _, s := range n.List {
			c.walk(s, rankDep)
		}
	case *ast.IfStmt:
		c.walk(n.Init, rankDep)
		dep := rankDep || c.exprMentionsRank(n.Cond)
		c.walk(n.Body, dep)
		c.walk(n.Else, dep)
	case *ast.ForStmt:
		c.walk(n.Init, rankDep)
		dep := rankDep || c.exprMentionsRank(n.Cond)
		c.walk(n.Post, dep)
		c.walk(n.Body, dep)
	case *ast.RangeStmt:
		c.walk(n.Body, rankDep)
	case *ast.SwitchStmt:
		c.walk(n.Init, rankDep)
		dep := rankDep || (n.Tag != nil && c.exprMentionsRank(n.Tag))
		for _, cl := range n.Body.List {
			cc := cl.(*ast.CaseClause)
			clDep := dep
			for _, e := range cc.List {
				if c.exprMentionsRank(e) {
					clDep = true
				}
			}
			for _, s := range cc.Body {
				c.walk(s, clDep)
			}
		}
	case *ast.TypeSwitchStmt:
		c.walk(n.Init, rankDep)
		for _, cl := range n.Body.List {
			for _, s := range cl.(*ast.CaseClause).Body {
				c.walk(s, rankDep)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range n.Body.List {
			cm := cl.(*ast.CommClause)
			c.walk(cm.Comm, rankDep)
			for _, s := range cm.Body {
				c.walk(s, rankDep)
			}
		}
	case *ast.LabeledStmt:
		c.walk(n.Stmt, rankDep)
	case ast.Stmt:
		if !rankDep {
			return
		}
		inspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := mpiCall(c.pass, call)
			if !ok || !collectiveNames[name] {
				return true
			}
			c.pass.Reportf(call.Pos(), "collective %s reached under a rank-dependent branch: other ranks will not enter it in the same order", name)
			return true
		})
	}
}

// exprMentionsRank reports whether e contains a Rank()/WorldRank() call or
// a variable derived from one.
func (c *coChecker) exprMentionsRank(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	inspectShallow(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := mpiCall(c.pass, n); ok && (name == "Rank" || name == "WorldRank") {
				found = true
				return false
			}
		case *ast.Ident:
			if obj := c.pass.TypesInfo.Uses[n]; obj != nil && c.rankVars[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
