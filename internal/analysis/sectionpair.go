package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// Sectionpair checks that every SectionEnter is matched by a SectionExit
// with the same label on every path out of the enclosing function, and
// that sections nest perfectly (exits close the innermost open section).
// The walk is path-sensitive over the statement structure — if/else,
// for/range, switch/select — and understands the `defer c.SectionExit(l)`
// idiom as closing at function return.
var Sectionpair = &Analyzer{
	Name: "sectionpair",
	Doc: "check that SectionEnter/SectionExit calls are balanced and perfectly nested\n\n" +
		"Every SectionEnter must be closed by a SectionExit with the same label\n" +
		"on every path out of the function (a deferred exit counts), exits must\n" +
		"close the innermost open section, and branches must leave the section\n" +
		"stack in the same state on every arm.",
	Run: runSectionpair,
}

// spFrame is one open section on the simulated stack.
type spFrame struct {
	label string
	pos   token.Pos
}

// spState is the abstract state threaded through the statement walk.
type spState struct {
	stack  []spFrame
	defers []spFrame // deferred SectionExit calls, in defer order
	// known goes false when the walk sees something it cannot model (a
	// non-constant label, sections inside a deferred closure); from then
	// on the function is given the benefit of the doubt.
	known bool
	// terminated marks the path as ended (return/goto/panic-like).
	terminated bool
}

func (s *spState) clone() *spState {
	c := *s
	c.stack = append([]spFrame(nil), s.stack...)
	c.defers = append([]spFrame(nil), s.defers...)
	return &c
}

// sameStack reports whether two states have identical open-section stacks.
func sameStack(a, b *spState) bool {
	if len(a.stack) != len(b.stack) {
		return false
	}
	for i := range a.stack {
		if a.stack[i].label != b.stack[i].label {
			return false
		}
	}
	return true
}

type spChecker struct {
	pass     *Pass
	reported map[token.Pos]map[string]bool
}

func (c *spChecker) reportf(pos token.Pos, format string, args ...any) {
	d := Diagnostic{Pos: pos}
	d.Message = fmt.Sprintf(format, args...)
	if c.reported[pos] == nil {
		c.reported[pos] = map[string]bool{}
	}
	if c.reported[pos][d.Message] {
		return
	}
	c.reported[pos][d.Message] = true
	c.pass.Report(d)
}

func runSectionpair(pass *Pass) error {
	c := &spChecker{pass: pass, reported: map[token.Pos]map[string]bool{}}
	funcBodies(pass.Files, func(body *ast.BlockStmt) {
		st := &spState{known: true}
		c.block(body, st)
		if st.known && !st.terminated {
			c.checkExit(st, body.Rbrace)
		}
	})
	return nil
}

// block walks the statements of a block, mutating st in place.
func (c *spChecker) block(b *ast.BlockStmt, st *spState) {
	for _, s := range b.List {
		if st.terminated || !st.known {
			return
		}
		c.stmt(s, st)
	}
}

func (c *spChecker) stmt(s ast.Stmt, st *spState) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.block(s, st)
	case *ast.DeferStmt:
		c.deferStmt(s, st)
	case *ast.IfStmt:
		c.ifStmt(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.scanExpr(s.Cond, st)
		c.loopBody(s.Body, st)
	case *ast.RangeStmt:
		c.scanExpr(s.X, st)
		c.loopBody(s.Body, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.scanExpr(s.Tag, st)
		c.clauses(s.Body, st, switchHasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.clauses(s.Body, st, switchHasDefault(s.Body))
	case *ast.SelectStmt:
		c.clauses(s.Body, st, true)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.scanExpr(r, st)
		}
		if st.known {
			c.checkExit(st.clone(), s.Pos())
		}
		st.terminated = true
	case *ast.BranchStmt:
		// break/continue/goto end this path conservatively: the walk does
		// not track targets, and flagging the surrounding construct's stack
		// divergence is enough to keep the check useful.
		st.terminated = true
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, st)
	default:
		// Everything else (assignments, expression statements, go, send,
		// declarations) is scanned for section calls in evaluation order.
		c.scanStmt(s, st)
	}
}

// scanStmt scans a non-control-flow statement for section calls.
func (c *spChecker) scanStmt(s ast.Stmt, st *spState) {
	inspectShallow(s, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c.call(call, st)
		return true
	})
}

func (c *spChecker) scanExpr(e ast.Expr, st *spState) {
	if e == nil {
		return
	}
	inspectShallow(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c.call(call, st)
		return true
	})
}

// call updates st for one call expression.
func (c *spChecker) call(call *ast.CallExpr, st *spState) {
	name, ok := mpiCall(c.pass, call)
	if !ok {
		return
	}
	switch name {
	case "SectionEnter":
		if len(call.Args) < 1 {
			return
		}
		label, ok := constantLabel(c.pass, call.Args[0])
		if !ok {
			// Dynamic label: stop modelling this function rather than
			// guessing.
			st.known = false
			return
		}
		st.stack = append(st.stack, spFrame{label: label, pos: call.Pos()})
	case "SectionExit":
		if len(call.Args) < 1 {
			return
		}
		label, ok := constantLabel(c.pass, call.Args[0])
		if !ok {
			st.known = false
			return
		}
		if len(st.stack) == 0 {
			c.reportf(call.Pos(), "SectionExit(%q) without a matching SectionEnter on this path", label)
			return
		}
		top := st.stack[len(st.stack)-1]
		if top.label != label {
			c.reportf(call.Pos(), "SectionExit(%q) does not match the innermost open section %q", label, top.label)
		}
		// Pop regardless, so one mismatch does not cascade.
		st.stack = st.stack[:len(st.stack)-1]
	}
}

// deferStmt handles `defer c.SectionExit(label)` (modelled as closing at
// return) and deferred closures (not modelled — state goes unknown if they
// touch sections).
func (c *spChecker) deferStmt(s *ast.DeferStmt, st *spState) {
	if name, ok := mpiCall(c.pass, s.Call); ok {
		switch name {
		case "SectionExit":
			if len(s.Call.Args) < 1 {
				return
			}
			label, ok := constantLabel(c.pass, s.Call.Args[0])
			if !ok {
				st.known = false
				return
			}
			st.defers = append(st.defers, spFrame{label: label, pos: s.Pos()})
			return
		case "SectionEnter":
			c.reportf(s.Pos(), "deferred SectionEnter is always a nesting error")
			return
		}
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		// A deferred closure that manipulates sections is beyond this
		// walk's model; a closure that doesn't is harmless.
		touches := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if name, ok := mpiCall(c.pass, call); ok &&
					(name == "SectionEnter" || name == "SectionExit") {
					touches = true
					return false
				}
			}
			return true
		})
		if touches {
			st.known = false
		}
	}
}

// ifStmt walks both arms and merges.
func (c *spChecker) ifStmt(s *ast.IfStmt, st *spState) {
	if s.Init != nil {
		c.stmt(s.Init, st)
	}
	c.scanExpr(s.Cond, st)
	if !st.known {
		return
	}
	thenSt := st.clone()
	c.block(s.Body, thenSt)
	elseSt := st.clone()
	if s.Else != nil {
		c.stmt(s.Else, elseSt)
	}
	c.merge(st, thenSt, elseSt, s.Pos())
}

// merge folds the outcomes of two alternative arms back into st.
func (c *spChecker) merge(st, a, b *spState, pos token.Pos) {
	if !a.known || !b.known {
		st.known = false
		return
	}
	switch {
	case a.terminated && b.terminated:
		*st = *a
	case a.terminated:
		*st = *b
	case b.terminated:
		*st = *a
	default:
		if !sameStack(a, b) {
			c.reportf(pos, "branches leave different sections open (%s vs %s)",
				stackString(a.stack), stackString(b.stack))
			st.known = false
			return
		}
		*st = *a
	}
}

// loopBody checks that one iteration leaves the section stack unchanged,
// then continues with the pre-loop state (a loop may run zero times).
func (c *spChecker) loopBody(body *ast.BlockStmt, st *spState) {
	if !st.known {
		return
	}
	it := st.clone()
	c.block(body, it)
	if !it.known {
		st.known = false
		return
	}
	if !it.terminated && !sameStack(it, st) {
		c.reportf(body.Pos(), "loop body changes the open-section stack (%s -> %s): sections must be balanced within one iteration",
			stackString(st.stack), stackString(it.stack))
		st.known = false
	}
}

// clauses walks each case body of a switch/select as an alternative arm.
func (c *spChecker) clauses(body *ast.BlockStmt, st *spState, hasDefault bool) {
	if !st.known {
		return
	}
	var arms []*spState
	for _, cl := range body.List {
		arm := st.clone()
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.scanExpr(e, arm)
			}
			for _, s := range cl.Body {
				if arm.terminated || !arm.known {
					break
				}
				c.stmt(s, arm)
			}
		case *ast.CommClause:
			if cl.Comm != nil {
				c.stmt(cl.Comm, arm)
			}
			for _, s := range cl.Body {
				if arm.terminated || !arm.known {
					break
				}
				c.stmt(s, arm)
			}
		}
		arms = append(arms, arm)
	}
	if !hasDefault {
		// Without a default the switch may fall straight through.
		arms = append(arms, st.clone())
	}
	// Fold all arms pairwise.
	acc := arms[0]
	for _, arm := range arms[1:] {
		next := acc.clone()
		c.merge(next, acc, arm, body.Pos())
		acc = next
		if !acc.known {
			break
		}
	}
	*st = *acc
}

func switchHasDefault(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// checkExit validates the state at a function exit point: deferred exits
// unwind the stack LIFO, and anything still open is reported at its
// SectionEnter.
func (c *spChecker) checkExit(st *spState, exitPos token.Pos) {
	stack := append([]spFrame(nil), st.stack...)
	// Defers run last-registered-first.
	for i := len(st.defers) - 1; i >= 0; i-- {
		d := st.defers[i]
		if len(stack) == 0 {
			c.reportf(d.pos, "deferred SectionExit(%q) without a matching SectionEnter on this path", d.label)
			continue
		}
		top := stack[len(stack)-1]
		if top.label != d.label {
			c.reportf(d.pos, "deferred SectionExit(%q) does not match the innermost open section %q", d.label, top.label)
		}
		stack = stack[:len(stack)-1]
	}
	for _, f := range stack {
		c.reportf(f.pos, "section %q entered here is not exited on every path", f.label)
	}
}

func stackString(stack []spFrame) string {
	if len(stack) == 0 {
		return "[]"
	}
	s := "["
	for i, f := range stack {
		if i > 0 {
			s += " "
		}
		s += f.label
	}
	return s + "]"
}
