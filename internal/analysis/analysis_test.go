package analysis

import (
	"path/filepath"
	"runtime"
	"testing"
)

func TestSectionpair(t *testing.T)     { RunFixture(t, Sectionpair, "sectionpair") }
func TestSectionlabel(t *testing.T)    { RunFixture(t, Sectionlabel, "sectionlabel") }
func TestUseAfterRelease(t *testing.T) { RunFixture(t, UseAfterRelease, "useafterrelease") }
func TestCollectiveOrder(t *testing.T) { RunFixture(t, CollectiveOrder, "collectiveorder") }
func TestRevokedErr(t *testing.T)      { RunFixture(t, RevokedErr, "revokederr") }
func TestHotPathAlloc(t *testing.T)    { RunFixture(t, HotPathAlloc, "hotpathalloc") }
func TestCommDeadlock(t *testing.T)    { RunFixture(t, CommDeadlock, "commdeadlock") }
func TestLockOrder(t *testing.T)       { RunFixture(t, LockOrder, "lockorder") }

// TestLoadModulePackage exercises the module-path resolution branch of the
// loader (as opposed to the fixture SrcRoot branch the suites above use):
// the real mpi runtime loads, type-checks cleanly, and imports resolve.
func TestLoadModulePackage(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the runtime is slow in -short mode")
	}
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate the repo root")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(thisFile)))
	pkgs, err := Load(LoadConfig{Dir: root}, "./internal/mpi")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if want := "repro/internal/mpi"; p.Path != want {
		t.Errorf("package path = %q, want %q", p.Path, want)
	}
	if len(p.TypeErrors) != 0 {
		t.Errorf("type errors in the runtime: %v", p.TypeErrors)
	}
	if p.Types == nil || p.Types.Name() != "mpi" {
		t.Errorf("type-checked package missing or misnamed: %v", p.Types)
	}
}
