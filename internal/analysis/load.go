package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the driver half of the framework: package discovery,
// parsing and type checking without golang.org/x/tools/go/packages. The
// loader resolves three kinds of import paths, in order:
//
//  1. fixture roots (analysistest's testdata/src GOPATH-style layout),
//  2. the enclosing module (path rewritten against the go.mod directory),
//  3. the standard library, through go/importer's source importer —
//     which works offline from GOROOT/src, the property this repository's
//     network-free build environment requires.
//
// Type errors are collected, not fatal: a pass still sees the partial
// types.Info, and the caller decides whether broken packages fail the run.

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Imports maps import paths to the fully loaded (syntax-carrying)
	// dependency packages — fixture and in-module deps only; stdlib
	// imports resolve through go/importer and carry no syntax. Program
	// construction (callgraph.go) follows these edges so interprocedural
	// passes can walk into dependency bodies.
	Imports map[string]*Package
	// TypeErrors holds the (non-fatal) type-checker complaints.
	TypeErrors []error
}

// LoadConfig controls package discovery and import resolution.
type LoadConfig struct {
	// Dir is the directory patterns are resolved against (default ".").
	Dir string
	// Tests includes in-package _test.go files in the loaded syntax.
	// External test packages (package foo_test) are not loaded.
	Tests bool
	// SrcRoot, when set, resolves import paths GOPATH-style against
	// SrcRoot/<path> before consulting the module — the analysistest
	// fixture layout.
	SrcRoot string
}

type loader struct {
	cfg  LoadConfig
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*types.Package
	// full caches the complete (syntax-carrying) packages by import path.
	// Every package is parsed and type-checked exactly once per Load, no
	// matter how many times it is reached as a root or a dependency — the
	// single-instance property that gives *types.Func objects program-wide
	// identity, which the call graph (callgraph.go) depends on.
	full    map[string]*Package
	loading map[string]bool
	// roots marks the directories named by the Load patterns; only these
	// may include _test.go files (when cfg.Tests), and only when they are
	// first reached through Load itself rather than an import edge.
	roots     map[string]bool
	moduleDir string
	module    string
}

// Load expands patterns ("./...", "./internal/mpi", an import path under
// SrcRoot) into packages, parses and type-checks each, and returns them
// sorted by import path.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	if cfg.Dir == "" {
		cfg.Dir = "."
	}
	dir, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, err
	}
	cfg.Dir = dir
	l := &loader{
		cfg:     cfg,
		fset:    token.NewFileSet(),
		pkgs:    map[string]*types.Package{},
		full:    map[string]*Package{},
		loading: map[string]bool{},
		roots:   map[string]bool{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	l.moduleDir, l.module = findModule(cfg.Dir)

	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	for _, d := range dirs {
		l.roots[d] = true
	}
	var out []*Package
	for _, d := range dirs {
		p, err := l.loadDir(d, true)
		if err != nil {
			if isNoGo(err) {
				continue
			}
			return nil, fmt.Errorf("%s: %w", d, err)
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// findModule walks upward from dir to the enclosing go.mod and returns its
// directory and module path ("", "" when not inside a module).
func findModule(dir string) (string, string) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest)
				}
			}
			return d, ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", ""
		}
		d = parent
	}
}

// expand turns the command-line patterns into package directories.
func (l *loader) expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(l.cfg.Dir, root)
		}
		if fi, err := os.Stat(root); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q does not name a directory", pat)
		}
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || name == "out" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	// Keep only directories that actually hold Go files.
	var out []string
	for _, d := range dirs {
		if _, err := build.ImportDir(d, 0); err != nil {
			if isNoGo(err) {
				continue
			}
			return nil, fmt.Errorf("%s: %w", d, err)
		}
		out = append(out, d)
	}
	return out, nil
}

func isNoGo(err error) bool {
	var ng *build.NoGoError
	return errAs(err, &ng)
}

// errAs is errors.As without importing errors (keeps the import block tidy
// for the one use).
func errAs(err error, target *(*build.NoGoError)) bool {
	for err != nil {
		if ng, ok := err.(*build.NoGoError); ok {
			*target = ng
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// pathFor derives the import path of a package directory.
func (l *loader) pathFor(dir string) string {
	if l.cfg.SrcRoot != "" {
		if rel, err := filepath.Rel(l.cfg.SrcRoot, dir); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	if l.moduleDir != "" {
		if rel, err := filepath.Rel(l.moduleDir, dir); err == nil && !strings.HasPrefix(rel, "..") {
			if rel == "." {
				return l.module
			}
			return l.module + "/" + filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(dir)
}

// dirFor resolves an import path to a source directory (fixtures first,
// then the module); ok is false for everything else (stdlib).
func (l *loader) dirFor(path string) (string, bool) {
	if l.cfg.SrcRoot != "" {
		d := filepath.Join(l.cfg.SrcRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(d); err == nil && fi.IsDir() {
			return d, true
		}
	}
	if l.module != "" {
		if path == l.module {
			return l.moduleDir, true
		}
		if rest, ok := strings.CutPrefix(path, l.module+"/"); ok {
			return filepath.Join(l.moduleDir, filepath.FromSlash(rest)), true
		}
	}
	return "", false
}

// Import implements types.Importer for the dependency graph.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if dir, ok := l.dirFor(path); ok {
		p, err := l.loadDir(dir, false)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	p, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// loadDir parses and type-checks one package directory. Dependency loads
// (root = false) exclude test files regardless of cfg.Tests. A package is
// loaded at most once per Load: repeated visits — a dependency that is also
// a root pattern, or a root imported by an earlier root — return the cached
// instance, so type objects keep their identity across the whole program.
func (l *loader) loadDir(dir string, root bool) (*Package, error) {
	path := l.pathFor(dir)
	if p, ok := l.full[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	if root && l.roots[dir] && l.cfg.Tests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	pkg := &Package{
		Path: path,
		Dir:  dir,
		Fset: l.fset,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
		Files: files,
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, pkg.Info)
	if tpkg == nil {
		return nil, err
	}
	pkg.Types = tpkg
	l.pkgs[path] = tpkg
	l.full[path] = pkg
	// Attach the syntax-carrying dependencies (type checking through
	// l.Import has already loaded them into the cache).
	imports := append(append([]string(nil), bp.Imports...), bp.TestImports...)
	for _, imp := range imports {
		if dep, ok := l.full[imp]; ok && dep != pkg {
			if pkg.Imports == nil {
				pkg.Imports = map[string]*Package{}
			}
			pkg.Imports[imp] = dep
		}
	}
	return pkg, nil
}

// Run executes the analyzers over the packages and returns the findings in
// a deterministic order — sorted by file, line, column, pass and message —
// that is independent of the order pkgs were passed in or loaded.
// Line-scoped `//seclint:disable <pass> <reason>` directives suppress
// matching findings; a disable without a justification is itself reported.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	var program *Program
	for _, a := range analyzers {
		if a.RunProgram != nil && program == nil && len(pkgs) > 0 {
			program = NewProgram(pkgs)
		}
	}
	// Per-package passes run over the packages in path order regardless of
	// the caller's slice order.
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	for _, a := range analyzers {
		if a.RunProgram != nil {
			if program == nil {
				continue
			}
			pp := &ProgramPass{Analyzer: a, Program: program}
			pp.Report = func(d Diagnostic) {
				out = append(out, Finding{
					Analyzer: a.Name,
					Pos:      program.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.RunProgram(pp); err != nil {
				return out, fmt.Errorf("%s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range sorted {
			pkg := pkg
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				out = append(out, Finding{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return out, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	out = applyDirectives(out, pkgs, program)
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Pos, out[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}

// applyDirectives filters findings covered by line-scoped disable
// directives and reports unjustified directives.
func applyDirectives(findings []Finding, pkgs []*Package, program *Program) []Finding {
	if len(pkgs) == 0 {
		return findings
	}
	var ld *lineDirectives
	if program != nil {
		ld = program.Directives()
	} else {
		ld = newLineDirectives(pkgs[0].Fset, pkgs)
	}
	fset := pkgs[0].Fset
	out := findings[:0]
	for _, f := range findings {
		if !ld.suppresses(f.Analyzer, f.Pos) {
			out = append(out, f)
		}
	}
	// A suppression without a justification defeats the audit trail the
	// baseline and directives exist to provide; flag it once per directive.
	seen := map[token.Pos]bool{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					d, ok := parseDirective(c)
					if !ok || seen[d.Pos] {
						continue
					}
					seen[d.Pos] = true
					if (d.Kind == DirDisable || d.Kind == DirAllocsOK) && d.Reason == "" {
						out = append(out, Finding{
							Analyzer: "seclint",
							Pos:      fset.Position(d.Pos),
							Message:  fmt.Sprintf("seclint:%s without a justification: add a reason after the marker", d.Kind),
						})
					}
				}
			}
		}
	}
	return out
}

// Finding is one rendered diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding the way go vet does, with the pass appended.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}
