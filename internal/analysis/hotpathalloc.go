package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc statically proves the runtime's pinned 0-allocs/op
// contracts: every function annotated //seclint:hotpath — and everything it
// transitively calls through static edges — must perform no heap
// allocation. The pass is the compile-time twin of the AllocsPerRun
// regression tests: where those measure one executed schedule, this walks
// every path of every reachable body.
//
// Flagged constructs: make, new, escaping composite literals (&T{...},
// slice and map literals), closures, non-self append (growth into a fresh
// slice), map writes, string concatenation and string<->slice conversions,
// interface boxing of non-pointer-shaped values, variadic argument slices,
// go statements, defer inside loops, and calls that cannot be proven
// allocation-free (unknown externals, dynamic dispatch through interfaces
// or function values).
//
// Deliberately allowed: self-append (x = append(x[...], ...) reuses the
// buffer it grows, amortized like the runtime's own scratch idiom),
// sync.Pool Get/Put (amortized pooling is the point of the fast path),
// sync primitives, atomics, math, and error-constructing expressions inside
// `return` statements whose error result is non-nil — a path that returns a
// fresh error has left the steady state by definition.
//
// Escape hatch: //seclint:allocs-ok <reason> on a function doc treats the
// function as an allocation-free leaf (cold failure paths, one-time
// bring-up, amortized slow paths); on a statement line it suppresses that
// line's findings. The justification is mandatory.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "prove //seclint:hotpath functions (and their static callees) allocation-free\n\n" +
		"The static twin of the AllocsPerRun pins: flags heap allocation —\n" +
		"make/new, escaping literals, closures, append growth, map writes,\n" +
		"boxing, fmt/string building, unknown or dynamic calls — anywhere in\n" +
		"the transitive call closure of a hot-path root, modulo justified\n" +
		"//seclint:allocs-ok escapes.",
	RunProgram: runHotPathAlloc,
}

// allocFreeExternals are stdlib callees known (and relied on) not to
// allocate on the steady-state path. sync.Pool Get/Put are the amortized
// exception that proves the rule: a pool miss allocates, a steady state
// does not, and pooling is precisely how the runtime's fast paths reach
// 0 allocs/op.
var allocFreeExternals = map[string]bool{
	"sync.(*Mutex).Lock":      true,
	"sync.(*Mutex).Unlock":    true,
	"sync.(*Mutex).TryLock":   true,
	"sync.(*RWMutex).Lock":    true,
	"sync.(*RWMutex).Unlock":  true,
	"sync.(*RWMutex).RLock":   true,
	"sync.(*RWMutex).RUnlock": true,
	"sync.(*Pool).Get":        true,
	"sync.(*Pool).Put":        true,
	"sync.(*WaitGroup).Add":   true,
	"sync.(*WaitGroup).Done":  true,
	"sync.(*WaitGroup).Wait":  true,
	"sync.(*Once).Do":         true,

	"time.Since":            true,
	"time.Now":              true,
	"time.Duration.Seconds": true,

	// binary.LittleEndian codec methods: the Uint/PutUint forms are pure
	// value arithmetic; the Append forms extend the caller's buffer — the
	// same amortized scratch-reuse contract as the sanctioned self-append.
	"encoding/binary.littleEndian.Uint16":       true,
	"encoding/binary.littleEndian.Uint32":       true,
	"encoding/binary.littleEndian.Uint64":       true,
	"encoding/binary.littleEndian.PutUint16":    true,
	"encoding/binary.littleEndian.PutUint32":    true,
	"encoding/binary.littleEndian.PutUint64":    true,
	"encoding/binary.littleEndian.AppendUint16": true,
	"encoding/binary.littleEndian.AppendUint32": true,
	"encoding/binary.littleEndian.AppendUint64": true,

	// errors.Is walks the Unwrap chain without allocating.
	"errors.Is": true,

	"math/rand.(*Rand).Float64":     true,
	"math/rand.(*Rand).NormFloat64": true,
	"math/rand.(*Rand).ExpFloat64":  true,
	"math/rand.(*Rand).Intn":        true,
	"math/rand.(*Rand).Int31n":      true,
	"math/rand.(*Rand).Int63":       true,
	"math/rand.(*Rand).Int63n":      true,
	"math/rand.(*Rand).Uint64":      true,
}

// allocFreePackages are stdlib packages whose entire exported surface is
// allocation-free value arithmetic.
var allocFreePackages = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

func runHotPathAlloc(pp *ProgramPass) error {
	prog := pp.Program
	c := &hotChecker{pp: pp, prog: prog, visited: map[*Func]bool{}}

	// Roots in deterministic (position) order; the closure is explored
	// breadth-first so the "reachable from" attribution names the nearest
	// root.
	type work struct {
		f    *Func
		root *Func
	}
	var queue []work
	for _, f := range prog.Funcs() {
		if _, ok := f.HasDirective(DirHotpath); ok {
			queue = append(queue, work{f: f, root: f})
		}
	}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		if c.visited[w.f] {
			continue
		}
		c.visited[w.f] = true
		c.checkBody(w.f, w.root)
		for _, site := range w.f.Calls {
			callee := site.Callee
			if callee == nil || c.visited[callee] {
				continue
			}
			if d, ok := callee.HasDirective(DirAllocsOK); ok {
				// Justified leaves are trusted; an unjustified allocs-ok is
				// reported centrally by the driver.
				_ = d
				continue
			}
			queue = append(queue, work{f: callee, root: w.root})
		}
	}
	return nil
}

type hotChecker struct {
	pp      *ProgramPass
	prog    *Program
	visited map[*Func]bool
}

// pointerShaped reports whether values of t are stored directly in an
// interface word, making interface conversion allocation-free.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		return u.NumFields() == 1 && pointerShaped(u.Field(0).Type())
	case *types.Array:
		return u.Len() == 1 && pointerShaped(u.Elem())
	}
	return false
}

// externalKey renders a *types.Func as "pkgpath.Name" or
// "pkgpath.(*Recv).Name" for the whitelist lookup.
func externalKey(obj *types.Func) string {
	if obj.Pkg() == nil {
		return obj.Name()
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		star := ""
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
			star = "*"
		}
		if named, ok := rt.(*types.Named); ok {
			if star == "*" {
				return obj.Pkg().Path() + ".(*" + named.Obj().Name() + ")." + obj.Name()
			}
			return obj.Pkg().Path() + "." + named.Obj().Name() + "." + obj.Name()
		}
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// checkBody walks one hot function's body and flags allocation sites.
func (c *hotChecker) checkBody(f *Func, root *Func) {
	info := f.Pkg.Info
	via := ""
	if f != root {
		via = " (reachable from //seclint:hotpath " + root.Name() + ")"
	}
	report := func(pos token.Pos, what string) {
		c.pp.Reportf(pos, "alloc on hot path in %s: %s%s", f.Name(), what, via)
	}

	// Call sites by position, for the call classification below.
	sites := map[*ast.CallExpr]CallSite{}
	for _, s := range f.Calls {
		sites[s.Call] = s
	}

	var walk func(n ast.Node, loopDepth int, cold bool)
	walkList := func(list []ast.Stmt, loopDepth int, cold bool) {
		for _, s := range list {
			walk(s, loopDepth, cold)
		}
	}
	checkCallArgs := func(call *ast.CallExpr, sig *types.Signature, cold bool) {
		if sig == nil || cold {
			return
		}
		np := sig.Params().Len()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= np-1:
				if call.Ellipsis.IsValid() {
					continue // spread: no new slice
				}
				st := sig.Params().At(np - 1).Type().(*types.Slice)
				if i == np-1 {
					report(call.Pos(), "variadic call allocates its argument slice")
				}
				pt = st.Elem()
			case i < np:
				pt = sig.Params().At(i).Type()
			default:
				continue
			}
			if !types.IsInterface(pt) {
				continue
			}
			at, ok := info.Types[arg]
			if !ok || at.Type == nil {
				continue
			}
			if at.IsNil() || types.IsInterface(at.Type) || pointerShaped(at.Type) {
				continue
			}
			report(arg.Pos(), "interface boxing of "+at.Type.String()+" value allocates")
		}
	}
	checkCall := func(call *ast.CallExpr, loopDepth int, cold bool) {
		// Builtins and conversions are not in the call-site index.
		site, indexed := sites[call]
		if !indexed {
			fun := ast.Unparen(call.Fun)
			if tv, ok := info.Types[fun]; ok && tv.IsType() {
				// Conversion: flag string<->slice re-encodings.
				to := tv.Type
				if len(call.Args) == 1 {
					if at, ok := info.Types[call.Args[0]]; ok && at.Type != nil {
						if allocatingConversion(at.Type, to) {
							report(call.Pos(), "conversion "+types.ExprString(fun)+"(...) copies and allocates")
						}
					}
				}
				return
			}
			if id, ok := fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					c.checkBuiltin(call, b.Name(), f, report, cold)
					return
				}
			}
			return
		}
		if site.Dynamic {
			if cold {
				return
			}
			what := "dynamic call through a function value cannot be proven allocation-free"
			if site.CalleeObj != nil {
				what = "dynamic call " + site.CalleeObj.Name() + " through interface " + "cannot be proven allocation-free"
			}
			report(call.Pos(), what)
			return
		}
		obj := site.CalleeObj
		if site.Callee != nil {
			// In-program: body is (or will be) checked; the call itself is
			// free. Still check boxing at the boundary. obj is nil for
			// directly-invoked function literals: no named signature, the
			// literal itself was already flagged as a closure.
			if obj != nil {
				if sig, ok := obj.Type().(*types.Signature); ok {
					checkCallArgs(call, sig, cold)
				}
			}
			return
		}
		if obj == nil {
			return
		}
		// External (no body in the program): whitelist or flag.
		key := externalKey(obj)
		if allocFreeExternals[key] || (obj.Pkg() != nil && allocFreePackages[obj.Pkg().Path()]) {
			if sig, ok := obj.Type().(*types.Signature); ok {
				checkCallArgs(call, sig, cold)
			}
			return
		}
		if cold {
			return
		}
		report(call.Pos(), "call to "+key+" is not known to be allocation-free")
	}

	walk = func(n ast.Node, loopDepth int, cold bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			if !cold {
				report(n.Pos(), "closure allocates")
			}
			return // the literal's body runs on its own schedule
		case *ast.BlockStmt:
			walkList(n.List, loopDepth, cold)
		case *ast.ForStmt:
			walk(n.Init, loopDepth, cold)
			walk(n.Cond, loopDepth, cold)
			walk(n.Post, loopDepth+1, cold)
			walk(n.Body, loopDepth+1, cold)
		case *ast.RangeStmt:
			walk(n.X, loopDepth, cold)
			walk(n.Body, loopDepth+1, cold)
		case *ast.DeferStmt:
			if loopDepth > 0 && !cold {
				report(n.Pos(), "defer inside a loop heap-allocates its frame")
			}
			walk(n.Call, loopDepth, cold)
		case *ast.GoStmt:
			if !cold {
				report(n.Pos(), "go statement allocates a goroutine")
			}
			walk(n.Call, loopDepth, cold)
		case *ast.ReturnStmt:
			cold = cold || c.isColdReturn(f, n)
			for _, e := range n.Results {
				walk(e, loopDepth, cold)
			}
		case *ast.CallExpr:
			if isPanicCall(info, n) {
				// Panic arguments never execute in steady state.
				return
			}
			checkCall(n, loopDepth, cold)
			walk(n.Fun, loopDepth, cold)
			for _, a := range n.Args {
				walk(a, loopDepth, cold)
			}
		case *ast.CompositeLit:
			if !cold {
				if t, ok := info.Types[n]; ok && t.Type != nil {
					switch t.Type.Underlying().(type) {
					case *types.Slice:
						report(n.Pos(), "slice literal allocates")
					case *types.Map:
						report(n.Pos(), "map literal allocates")
					}
				}
			}
			for _, e := range n.Elts {
				walk(e, loopDepth, cold)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && !cold {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "address-taken composite literal escapes to the heap")
				}
			}
			walk(n.X, loopDepth, cold)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !cold {
				if t, ok := info.Types[n]; ok && t.Type != nil && isString(t.Type) && t.Value == nil {
					report(n.Pos(), "string concatenation allocates")
				}
			}
			walk(n.X, loopDepth, cold)
			walk(n.Y, loopDepth, cold)
		case *ast.AssignStmt:
			c.checkAssign(f, n, report, cold)
			for _, e := range n.Rhs {
				// Self-appends were vetted by checkAssign; skip re-reporting
				// the append call but still walk its arguments.
				if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && isBuiltinCall(info, call, "append") {
					for _, a := range call.Args {
						walk(a, loopDepth, cold)
					}
					continue
				}
				walk(e, loopDepth, cold)
			}
			for _, e := range n.Lhs {
				walk(e, loopDepth, cold)
			}
		default:
			// Generic traversal for everything else.
			ast.Inspect(n, func(m ast.Node) bool {
				if m == n {
					return true
				}
				walk(m, loopDepth, cold)
				return false
			})
		}
	}
	walkList(f.Body.List, 0, false)
}

// checkBuiltin flags the allocating builtins.
func (c *hotChecker) checkBuiltin(call *ast.CallExpr, name string, f *Func, report func(token.Pos, string), cold bool) {
	if cold {
		return
	}
	switch name {
	case "make":
		report(call.Pos(), "make allocates")
	case "new":
		report(call.Pos(), "new allocates")
	case "append":
		// Bare append expressions (not the vetted x = append(x, ...) form,
		// which checkAssign intercepts before descending).
		report(call.Pos(), "append may grow and allocate; use the x = append(x, ...) scratch idiom")
	case "print", "println":
		report(call.Pos(), name+" allocates")
	}
}

// checkAssign vets assignment statements: self-appends are the one
// sanctioned append form, and map index writes are flagged.
func (c *hotChecker) checkAssign(f *Func, as *ast.AssignStmt, report func(token.Pos, string), cold bool) {
	info := f.Pkg.Info
	if !cold {
		for _, lhs := range as.Lhs {
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				if t, ok := info.Types[ix.X]; ok && t.Type != nil {
					if _, isMap := t.Type.Underlying().(*types.Map); isMap {
						report(lhs.Pos(), "map write may grow the map")
					}
				}
			}
		}
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinCall(info, call, "append") {
			continue
		}
		if cold {
			continue
		}
		if len(call.Args) == 0 || !sameSliceBase(as.Lhs[i], call.Args[0]) {
			report(call.Pos(), "append into a different slice allocates; grow a reused scratch buffer instead (x = append(x[...], ...))")
		}
	}
}

// sameSliceBase reports whether the append destination lhs and the appendee
// arg share a base expression — the x = append(x[...], ...) scratch idiom
// whose growth is amortized away by buffer reuse.
func sameSliceBase(lhs, arg ast.Expr) bool {
	base := ast.Unparen(arg)
	for {
		if sl, ok := base.(*ast.SliceExpr); ok {
			base = ast.Unparen(sl.X)
			continue
		}
		break
	}
	return types.ExprString(ast.Unparen(lhs)) == types.ExprString(base)
}

// isColdReturn reports whether ret leaves the function with a freshly
// non-nil error — the statically recognizable "we are off the steady state"
// exit. The enclosing function must have an error-typed last result and the
// returned error expression must not be the nil identifier or a plain
// variable reference (propagating a caller-checked error stays hot).
func (c *hotChecker) isColdReturn(f *Func, ret *ast.ReturnStmt) bool {
	sig := f.signature()
	if sig == nil || sig.Results().Len() == 0 || len(ret.Results) == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !isErrorType(last) {
		return false
	}
	if len(ret.Results) != sig.Results().Len() {
		return false
	}
	expr := ast.Unparen(ret.Results[len(ret.Results)-1])
	switch e := expr.(type) {
	case *ast.Ident:
		return false // nil or a propagated err variable
	case *ast.CallExpr:
		// A call constructing the error: fmt.Errorf(...), errors.New(...).
		// Tail calls into the program (return c.Send(...)) are NOT cold —
		// only error-constructor externals whose result is exactly `error`.
		if cs, ok := c.prog.resolveCall(f.Pkg, e); ok && cs.Callee == nil && !cs.Dynamic && cs.CalleeObj != nil {
			key := externalKey(cs.CalleeObj)
			return key == "fmt.Errorf" || key == "errors.New" || key == "errors.Join"
		}
		return false
	default:
		return false
	}
}

// signature returns the function's type signature (nil for literals whose
// type the checker does not need).
func (f *Func) signature() *types.Signature {
	if f.Obj != nil {
		return f.Obj.Type().(*types.Signature)
	}
	if f.Lit != nil {
		if tv, ok := f.Pkg.Info.Types[f.Lit]; ok {
			if sig, ok := tv.Type.(*types.Signature); ok {
				return sig
			}
		}
	}
	return nil
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// allocatingConversion reports whether converting from -> to copies into a
// fresh allocation (string <-> []byte/[]rune and friends).
func allocatingConversion(from, to types.Type) bool {
	fs, ts := isString(from), isString(to)
	_, fromSlice := from.Underlying().(*types.Slice)
	_, toSlice := to.Underlying().(*types.Slice)
	return (fs && toSlice) || (fromSlice && ts)
}

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isPanicCall reports whether call is the panic builtin.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	return isBuiltinCall(info, call, "panic")
}
