package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
)

// This file is the framework half of the package: a deliberately small
// reimplementation of the golang.org/x/tools/go/analysis vocabulary
// (Analyzer, Pass, Diagnostic) on the standard library alone. The build
// environment vendors no third-party modules, so the suite carries its own
// driver (load.go) instead of depending on x/tools — the analyzer surface
// is kept source-compatible so the passes could move onto the upstream
// framework by swapping imports.

// Analyzer describes one static check. Run receives a fully loaded and
// type-checked package and reports findings through pass.Report.
type Analyzer struct {
	// Name identifies the pass on the command line and in diagnostics.
	Name string
	// Doc is the one-paragraph description `seclint -help` prints.
	Doc string
	// Run executes the pass over one package. Exactly one of Run and
	// RunProgram is set.
	Run func(*Pass) error
	// RunProgram, when set, executes the pass once over the whole loaded
	// program — every root package plus its syntax-carrying dependencies,
	// joined by the call graph — instead of once per package. The
	// interprocedural passes (hotpathalloc, commdeadlock, lockorder) use
	// this form.
	RunProgram func(*ProgramPass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed syntax trees.
	Files []*ast.File
	// Pkg is the type-checked package (never nil; possibly incomplete when
	// the package had type errors).
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression facts (never nil).
	TypesInfo *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// mpiPkgName is the package whose runtime entry points every pass matches.
// Matching is by package *name*, not import path, so the suite checks the
// real runtime (repro/internal/mpi), user code built on a vendored copy,
// and the analysistest fixtures alike.
const mpiPkgName = "mpi"

// mpiCall resolves call to an entry point of the mpi runtime: a method on
// a type defined in a package named "mpi" (Comm, CartComm, Request) or a
// package-level function of such a package (Release, Waitall, ...). It
// returns the bare name ("SectionEnter", "Release") when it is one.
func mpiCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		// Unqualified call. Inside the mpi package itself, package-level
		// functions (Release, Waitall) appear as plain identifiers.
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return "", false
		}
		obj := pass.TypesInfo.Uses[id]
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Name() == mpiPkgName {
			return id.Name, true
		}
		return "", false
	}
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		// Method (or field) selection: x.M where x is a value.
		if s.Kind() != types.MethodVal {
			return "", false
		}
		if f := s.Obj(); f.Pkg() != nil && f.Pkg().Name() == mpiPkgName {
			return sel.Sel.Name, true
		}
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		// Qualified identifier: mpi.F.
		if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Name() == mpiPkgName {
				return sel.Sel.Name, true
			}
		}
	}
	return "", false
}

// mpiCallSig returns the called function's signature when call is an mpi
// runtime call (see mpiCall), for result-shape checks.
func mpiCallSig(pass *Pass, call *ast.CallExpr) (name string, sig *types.Signature, ok bool) {
	name, ok = mpiCall(pass, call)
	if !ok {
		return "", nil, false
	}
	tv, found := pass.TypesInfo.Types[call.Fun]
	if !found {
		return "", nil, false
	}
	sig, ok = tv.Type.(*types.Signature)
	return name, sig, ok
}

// constantLabel resolves e to a compile-time constant string (a literal or
// a named string constant such as convolution.SecHalo).
func constantLabel(pass *Pass, e ast.Expr) (string, bool) {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	if lit, ok := e.(*ast.BasicLit); ok && lit.Kind == token.STRING {
		if s, err := strconv.Unquote(lit.Value); err == nil {
			return s, true
		}
	}
	return "", false
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// funcBodies visits every function body in the package — declarations and
// literals — exactly once. Passes that analyze a body in isolation (the
// path walks) use it so a closure's sections never leak into its enclosing
// function's state.
func funcBodies(files []*ast.File, visit func(body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					visit(fn.Body)
				}
			case *ast.FuncLit:
				visit(fn.Body)
			}
			return true
		})
	}
}

// inspectShallow walks the tree under n but does not descend into function
// literals — the body of a closure executes on its own schedule and must
// not be confused with the enclosing statement sequence.
func inspectShallow(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		return visit(m)
	})
}

// All returns the full pass suite in reporting order: the five syntactic
// passes, then the three interprocedural dataflow passes.
func All() []*Analyzer {
	return []*Analyzer{
		Sectionpair,
		Sectionlabel,
		UseAfterRelease,
		CollectiveOrder,
		RevokedErr,
		HotPathAlloc,
		CommDeadlock,
		LockOrder,
	}
}
