package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// seclint source directives. Like go:build or nolint markers, they are
// ordinary comments with a rigid prefix:
//
//	//seclint:hotpath
//	    On a function declaration: the function is a hot-path root. The
//	    hotpathalloc pass proves it — and everything it transitively
//	    calls — free of heap allocation.
//
//	//seclint:allocs-ok <justification>
//	    On a function declaration: hotpathalloc treats the function as an
//	    allocation-free leaf and does not descend into it (a cold failure
//	    path, a one-time bring-up, an amortized slow path). On a statement
//	    line (trailing, or alone on the line above): the allocation
//	    findings on that line are suppressed. The justification is
//	    mandatory; a bare allocs-ok is itself reported.
//
//	//seclint:disable <pass> <justification>
//	    On a statement line (trailing, or alone on the line above):
//	    suppresses the named pass's findings on that line. The
//	    justification is mandatory.
//
// Directives are parsed from the comment text only; position decides what
// they attach to.

const (
	directivePrefix = "//seclint:"

	// DirHotpath marks a hot-path root function.
	DirHotpath = "hotpath"
	// DirAllocsOK exempts a function or line from hotpathalloc.
	DirAllocsOK = "allocs-ok"
	// DirDisable suppresses one pass on one line.
	DirDisable = "disable"
)

// Directive is one parsed seclint comment.
type Directive struct {
	Kind string // DirHotpath, DirAllocsOK or DirDisable
	// Pass is the pass a disable directive names; empty otherwise.
	Pass string
	// Reason is the justification text (everything after the marker, and
	// after the pass name for disable). Empty reasons are reported.
	Reason string
	Pos    token.Pos
}

// parseDirective parses one comment, returning ok=false for comments that
// are not seclint directives.
func parseDirective(c *ast.Comment) (Directive, bool) {
	text, ok := strings.CutPrefix(c.Text, directivePrefix)
	if !ok {
		return Directive{}, false
	}
	kind, rest, _ := strings.Cut(text, " ")
	d := Directive{Kind: kind, Pos: c.Pos()}
	rest = strings.TrimSpace(rest)
	switch kind {
	case DirHotpath:
		// No payload.
	case DirAllocsOK:
		d.Reason = rest
	case DirDisable:
		d.Pass, d.Reason, _ = strings.Cut(rest, " ")
		d.Reason = strings.TrimSpace(d.Reason)
	default:
		return Directive{}, false
	}
	return d, true
}

// funcDirectives returns the directives attached to a function declaration
// through its doc comment.
func funcDirectives(decl *ast.FuncDecl) []Directive {
	if decl == nil || decl.Doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range decl.Doc.List {
		if d, ok := parseDirective(c); ok {
			out = append(out, d)
		}
	}
	return out
}

// lineDirectives indexes a package's line-scoped directives: every
// directive comment claims its own line and the following line, so both the
// trailing form and the standalone-line-above form suppress the statement
// they annotate. Function doc comments are excluded — those directives are
// function-scoped, not line-scoped.
type lineDirectives struct {
	// byLine maps file name and claimed line to the directives in force.
	byLine map[string]map[int][]Directive
}

// newLineDirectives builds the index over a set of packages.
func newLineDirectives(fset *token.FileSet, pkgs []*Package) *lineDirectives {
	ld := &lineDirectives{byLine: map[string]map[int][]Directive{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			docs := map[*ast.Comment]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				if fn, ok := n.(*ast.FuncDecl); ok && fn.Doc != nil {
					for _, c := range fn.Doc.List {
						docs[c] = true
					}
				}
				return true
			})
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if docs[c] {
						continue
					}
					d, ok := parseDirective(c)
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					m := ld.byLine[pos.Filename]
					if m == nil {
						m = map[int][]Directive{}
						ld.byLine[pos.Filename] = m
					}
					m[pos.Line] = append(m[pos.Line], d)
					m[pos.Line+1] = append(m[pos.Line+1], d)
				}
			}
		}
	}
	return ld
}

// at returns the directives claiming the given position.
func (ld *lineDirectives) at(pos token.Position) []Directive {
	if m := ld.byLine[pos.Filename]; m != nil {
		return m[pos.Line]
	}
	return nil
}

// suppresses reports whether a finding of the named pass at pos is covered
// by a disable directive (or, for hotpathalloc, an allocs-ok directive).
func (ld *lineDirectives) suppresses(pass string, pos token.Position) bool {
	for _, d := range ld.at(pos) {
		if d.Kind == DirDisable && d.Pass == pass && d.Reason != "" {
			return true
		}
		if d.Kind == DirAllocsOK && pass == "hotpathalloc" && d.Reason != "" {
			return true
		}
	}
	return false
}
