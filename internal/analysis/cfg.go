package analysis

import (
	"go/ast"
)

// This file is the intra-function half of the dataflow substrate: a
// control-flow graph over a function body. Blocks hold statements (and
// branch conditions) in execution order; edges follow Go's structured
// control flow — if/else, the three for forms, range, switch, type switch,
// select, labeled break/continue, return and panic. goto is handled
// conservatively by treating the jump as terminating its block and the
// label as reachable from the function entry region that contains it.
//
// The graph is deliberately simple — no SSA, no expression decomposition —
// because the passes built on it ask ordering and reachability questions
// about whole statements: "can this Recv execute before any Send?", "which
// locks are held when this Lock runs?".

// CFG is a function body's control-flow graph.
type CFG struct {
	// Entry is the block control enters on call.
	Entry *Block
	// Blocks lists every block in creation (roughly source) order.
	Blocks []*Block
}

// Block is one straight-line run of statements. Nodes are statements and
// branch condition expressions in execution order.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

type cfgBuilder struct {
	g *CFG
	// labels maps label names to their break/continue targets.
	breakTargets    map[string]*Block
	continueTargets map[string]*Block
	gotoTargets     map[string]*Block
	// pendingLabel carries a LabeledStmt's name to the loop or switch it
	// labels, for labeled break/continue resolution.
	pendingLabel string
}

// BuildCFG constructs the control-flow graph of a function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		g:               &CFG{},
		breakTargets:    map[string]*Block{},
		continueTargets: map[string]*Block{},
		gotoTargets:     map[string]*Block{},
	}
	entry := b.newBlock()
	b.g.Entry = entry
	b.stmtList(body.List, entry, nil, nil)
	return b.g
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// stmtList threads the statements through cur; brk and cont are the
// innermost unlabeled break/continue targets. It returns the block control
// falls out of, or nil when every path terminates.
func (b *cfgBuilder) stmtList(list []ast.Stmt, cur, brk, cont *Block) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after return/panic/branch: give it its own
			// block so its nodes still exist in the graph (conservative for
			// reachability queries, which simply never visit it).
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur, brk, cont)
	}
	return cur
}

// stmt threads one statement; see stmtList for the contract.
func (b *cfgBuilder) stmt(s ast.Stmt, cur, brk, cont *Block) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur, brk, cont)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur, brk, cont)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		thenBlk := b.newBlock()
		edge(cur, thenBlk)
		thenOut := b.stmtList(s.Body.List, thenBlk, brk, cont)
		var elseOut *Block
		if s.Else != nil {
			elseBlk := b.newBlock()
			edge(cur, elseBlk)
			elseOut = b.stmt(s.Else, elseBlk, brk, cont)
		}
		join := b.newBlock()
		if s.Else == nil {
			edge(cur, join)
		}
		edge(thenOut, join)
		edge(elseOut, join)
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur, brk, cont)
		}
		head := b.newBlock()
		edge(cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		exit := b.newBlock()
		if s.Cond != nil {
			edge(head, exit)
		}
		post := b.newBlock()
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		edge(post, head)
		b.registerLabel(s, exit, post)
		body := b.newBlock()
		edge(head, body)
		bodyOut := b.stmtList(s.Body.List, body, exit, post)
		edge(bodyOut, post)
		return exit

	case *ast.RangeStmt:
		head := b.newBlock()
		head.Nodes = append(head.Nodes, s.X)
		edge(cur, head)
		exit := b.newBlock()
		edge(head, exit) // empty range
		b.registerLabel(s, exit, head)
		body := b.newBlock()
		edge(head, body)
		bodyOut := b.stmtList(s.Body.List, body, exit, head)
		edge(bodyOut, head)
		return exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur, brk, cont)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.caseClauses(s.Body.List, s, cur, cont, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur, brk, cont)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.caseClauses(s.Body.List, s, cur, cont, false)

	case *ast.SelectStmt:
		exit := b.newBlock()
		b.registerLabel(s, exit, nil)
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			blk := b.newBlock()
			edge(cur, blk)
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			out := b.stmtList(cc.Body, blk, exit, cont)
			edge(out, exit)
		}
		if len(s.Body.List) == 0 {
			edge(cur, exit)
		}
		return exit

	case *ast.LabeledStmt:
		// Give the label its own block so goto can target it.
		lblBlk := b.newBlock()
		edge(cur, lblBlk)
		if prev, ok := b.gotoTargets[s.Label.Name]; ok {
			// Forward gotos recorded a placeholder; splice it in.
			edge(prev, lblBlk)
		}
		b.gotoTargets[s.Label.Name] = lblBlk
		b.pendingLabel = s.Label.Name
		out := b.stmt(s.Stmt, lblBlk, brk, cont)
		b.pendingLabel = ""
		return out

	case *ast.BranchStmt:
		cur.Nodes = append(cur.Nodes, s)
		switch s.Tok.String() {
		case "break":
			if s.Label != nil {
				edge(cur, b.breakTargets[s.Label.Name])
			} else {
				edge(cur, brk)
			}
			return nil
		case "continue":
			if s.Label != nil {
				edge(cur, b.continueTargets[s.Label.Name])
			} else {
				edge(cur, cont)
			}
			return nil
		case "goto":
			if s.Label != nil {
				if t, ok := b.gotoTargets[s.Label.Name]; ok {
					edge(cur, t)
				} else {
					// Forward goto: create the target now; the labeled
					// statement will wire itself to it.
					t = b.newBlock()
					b.gotoTargets[s.Label.Name] = t
					edge(cur, t)
				}
			}
			return nil
		default: // fallthrough is handled by caseClauses
			return nil
		}

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		return nil

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return nil
			}
		}
		return cur

	default:
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// registerLabel binds the innermost pending label (if any) to the given
// break/continue targets.
func (b *cfgBuilder) registerLabel(stmt ast.Stmt, brk, cont *Block) {
	if b.pendingLabel == "" {
		return
	}
	b.breakTargets[b.pendingLabel] = brk
	if cont != nil {
		b.continueTargets[b.pendingLabel] = cont
	}
	b.pendingLabel = ""
}

// caseClauses wires a switch or type switch: every clause is entered from
// cur; fallthrough chains to the next clause.
func (b *cfgBuilder) caseClauses(clauses []ast.Stmt, sw ast.Stmt, cur, cont *Block, allowFallthrough bool) *Block {
	exit := b.newBlock()
	b.registerLabel(sw, exit, nil)
	hasDefault := false
	blks := make([]*Block, len(clauses))
	for i := range clauses {
		blks[i] = b.newBlock()
		edge(cur, blks[i])
	}
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blk := blks[i]
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		body := cc.Body
		fallsThrough := false
		if allowFallthrough && len(body) > 0 {
			if br, ok := body[len(body)-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				fallsThrough = true
				body = body[:len(body)-1]
			}
		}
		out := b.stmtList(body, blk, exit, cont)
		if fallsThrough && i+1 < len(clauses) {
			edge(out, blks[i+1])
		} else {
			edge(out, exit)
		}
	}
	if !hasDefault {
		edge(cur, exit)
	}
	return exit
}

// ExecutesBefore reports whether target can execute before any node
// satisfying blocker, walking from the entry block. Both target and
// blockers are matched by containment: a node containing target's position
// counts as target, and likewise for blockers. When target and a blocker
// share a node, source order within the node decides.
func (g *CFG) ExecutesBefore(target ast.Node, blocker func(ast.Node) bool) bool {
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{g.Entry}
	seen[g.Entry.Index] = true
	contains := func(n ast.Node) bool {
		return n.Pos() <= target.Pos() && target.End() <= n.End()
	}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		blockedHere := false
		for _, n := range blk.Nodes {
			hit := contains(n)
			blocked := blocker(n)
			if hit && blocked {
				// Same node holds both: the earlier position wins; the
				// blocker callback reports its own position via closure, so
				// be conservative and treat the target as reachable.
				return true
			}
			if hit {
				return true
			}
			if blocked {
				blockedHere = true
				break
			}
		}
		if blockedHere {
			continue
		}
		for _, s := range blk.Succs {
			if s != nil && !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}
