package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the interprocedural substrate: a Program indexing every
// function body across the loaded packages (roots plus their in-module and
// fixture dependencies, which the single-instance loader guarantees share
// one type-object space), and the static call edges between them. The
// dataflow passes — hotpathalloc, commdeadlock, lockorder — are Program
// passes: they run once over the whole program instead of once per package.

// Program is the whole loaded program, ready for interprocedural analysis.
type Program struct {
	Fset *token.FileSet
	// Packages are the root packages handed to Run, sorted by path.
	Packages []*Package
	// All is every indexed package — roots plus reachable syntax-carrying
	// dependencies — sorted by path.
	All []*Package

	// funcs maps declared functions and methods to their bodies.
	funcs map[*types.Func]*Func
	// byPos lists every indexed function (including function literals) in
	// deterministic order: by file name, then offset.
	byPos []*Func
	// lits maps function literals to their index entries.
	lits map[*ast.FuncLit]*Func

	// directives indexes line-scoped seclint comments across All.
	directives *lineDirectives
}

// Func is one function body in the program: a declared function or method
// (Decl != nil) or a function literal (Lit != nil).
type Func struct {
	// Obj is the declared function's type object; nil for literals.
	Obj  *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
	// Calls are the body's call sites in source order.
	Calls []CallSite
	// Directives are the function-scoped seclint directives from the doc
	// comment (hotpath, allocs-ok).
	Directives []Directive

	cfg *CFG // built on first use
}

// Name returns a human-readable name: "pkg.Fn", "pkg.(T).Method", or
// "pkg.func@line" for literals.
func (f *Func) Name() string {
	if f.Obj != nil {
		if recv := f.Obj.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return f.Pkg.Types.Name() + ".(" + named.Obj().Name() + ")." + f.Obj.Name()
			}
		}
		return f.Pkg.Types.Name() + "." + f.Obj.Name()
	}
	pos := f.Pkg.Fset.Position(f.Lit.Pos())
	return fmt.Sprintf("%s.func@%d", f.Pkg.Types.Name(), pos.Line)
}

// HasDirective reports whether the function carries a doc directive of the
// given kind, returning it when so.
func (f *Func) HasDirective(kind string) (Directive, bool) {
	for _, d := range f.Directives {
		if d.Kind == kind {
			return d, true
		}
	}
	return Directive{}, false
}

// CFG returns the function's control-flow graph, building it on first use.
func (f *Func) CFG() *CFG {
	if f.cfg == nil {
		f.cfg = BuildCFG(f.Body)
	}
	return f.cfg
}

// CallSite is one call expression inside a Func.
type CallSite struct {
	Call *ast.CallExpr
	// Callee is the in-program target; nil for external (stdlib) targets,
	// dynamic calls, builtins and conversions.
	Callee *Func
	// CalleeObj is the static target's type object, set even when the body
	// is outside the program (stdlib). Nil for dynamic calls.
	CalleeObj *types.Func
	// Dynamic marks calls whose target is unknowable statically: through a
	// function value or an interface method.
	Dynamic bool
}

// NewProgram indexes the packages (and their syntax-carrying dependencies)
// for interprocedural analysis.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		funcs: map[*types.Func]*Func{},
		lits:  map[*ast.FuncLit]*Func{},
	}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	p.Packages = append(p.Packages, pkgs...)
	sort.Slice(p.Packages, func(i, j int) bool { return p.Packages[i].Path < p.Packages[j].Path })

	// Transitive closure over syntax-carrying imports.
	seen := map[*Package]bool{}
	var visit func(*Package)
	visit = func(pkg *Package) {
		if seen[pkg] {
			return
		}
		seen[pkg] = true
		p.All = append(p.All, pkg)
		paths := make([]string, 0, len(pkg.Imports))
		for path := range pkg.Imports {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			visit(pkg.Imports[path])
		}
	}
	for _, pkg := range p.Packages {
		visit(pkg)
	}
	sort.Slice(p.All, func(i, j int) bool { return p.All[i].Path < p.All[j].Path })

	// Index every function body.
	for _, pkg := range p.All {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body == nil {
						return true
					}
					obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
					f := &Func{Obj: obj, Pkg: pkg, Decl: fn, Body: fn.Body,
						Directives: funcDirectives(fn)}
					if obj != nil {
						p.funcs[obj] = f
					}
					p.byPos = append(p.byPos, f)
				case *ast.FuncLit:
					f := &Func{Pkg: pkg, Lit: fn, Body: fn.Body}
					p.lits[fn] = f
					p.byPos = append(p.byPos, f)
				}
				return true
			})
		}
	}
	sort.Slice(p.byPos, func(i, j int) bool {
		pi, pj := p.Fset.Position(p.byPos[i].Body.Pos()), p.Fset.Position(p.byPos[j].Body.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})

	// Resolve call sites. Literals' call sites belong to the literal's own
	// Func, so walk each body shallowly.
	for _, f := range p.byPos {
		f.Calls = p.resolveCalls(f)
	}
	p.directives = newLineDirectives(p.Fset, p.All)
	return p
}

// Funcs returns every indexed function in deterministic position order.
func (p *Program) Funcs() []*Func { return p.byPos }

// FuncOf returns the index entry for a declared function object.
func (p *Program) FuncOf(obj *types.Func) *Func {
	if obj == nil {
		return nil
	}
	if f := p.funcs[obj]; f != nil {
		return f
	}
	// Generic instantiations resolve through their origin.
	return p.funcs[obj.Origin()]
}

// LitOf returns the index entry for a function literal.
func (p *Program) LitOf(lit *ast.FuncLit) *Func { return p.lits[lit] }

// Directives exposes the program-wide line-directive index.
func (p *Program) Directives() *lineDirectives { return p.directives }

// resolveCalls finds and resolves the call expressions in f's body,
// excluding nested function literals (they index their own sites).
func (p *Program) resolveCalls(f *Func) []CallSite {
	var out []CallSite
	inspectShallow(f.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		cs, ok := p.resolveCall(f.Pkg, call)
		if ok {
			out = append(out, cs)
		}
		return true
	})
	return out
}

// resolveCall classifies one call expression. ok is false for builtins and
// type conversions, which are not calls in the call-graph sense.
func (p *Program) resolveCall(pkg *Package, call *ast.CallExpr) (CallSite, bool) {
	info := pkg.Info
	fun := ast.Unparen(call.Fun)

	// Type conversion?
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return CallSite{}, false
	}

	switch fn := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fn].(type) {
		case *types.Builtin:
			return CallSite{}, false
		case *types.Func:
			return CallSite{Call: call, Callee: p.FuncOf(obj), CalleeObj: obj}, true
		default:
			// Function-typed variable (or a type-checker gap): dynamic.
			return CallSite{Call: call, Dynamic: true}, true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			if sel.Kind() == types.MethodVal {
				obj := sel.Obj().(*types.Func)
				if types.IsInterface(sel.Recv()) {
					return CallSite{Call: call, CalleeObj: obj, Dynamic: true}, true
				}
				return CallSite{Call: call, Callee: p.FuncOf(obj), CalleeObj: obj}, true
			}
			// Field of function type: dynamic.
			return CallSite{Call: call, Dynamic: true}, true
		}
		// Qualified identifier pkg.F.
		if obj, ok := info.Uses[fn.Sel].(*types.Func); ok {
			return CallSite{Call: call, Callee: p.FuncOf(obj), CalleeObj: obj}, true
		}
		return CallSite{Call: call, Dynamic: true}, true
	case *ast.FuncLit:
		return CallSite{Call: call, Callee: p.lits[fn]}, true
	default:
		// Anything else (index expressions into func slices, calls of call
		// results, ...) is dynamic.
		return CallSite{Call: call, Dynamic: true}, true
	}
}

// ProgramPass carries one whole-program analyzer run.
type ProgramPass struct {
	Analyzer *Analyzer
	Program  *Program
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Reportf reports a formatted finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
