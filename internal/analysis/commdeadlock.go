package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// CommDeadlock builds a static communication graph from the program's
// point-to-point call sites and reports schedules that block forever under
// the runtime's semantics: Send is eager and never blocks, Recv blocks
// until a matching envelope arrives. Three families of findings:
//
//  1. Recv from the caller's own rank with no Send-to-self that can
//     precede it — nothing else can ever post that envelope.
//
//  2. Symmetric (shift/ring/xor) exchanges that Recv before they Send:
//     when every rank runs `Recv(rank^k); Send(rank^k)` both partners
//     block in Recv and the matching Sends are never reached. The check
//     uses the function's CFG, so a Send on every path to the Recv clears
//     it, and only unconditional exchanges (not guarded by rank-dependent
//     branches, which master/worker and pipeline patterns use) are flagged.
//
//  3. Program-wide constant-tag matching: a Send whose tag no Recv in the
//     program ever asks for (or vice versa) can only feed a timeout. The
//     check arms only when every peer op uses compile-time-constant tags;
//     one dynamic tag anywhere disarms it. AnyTag wildcards match all.
//
// A fourth, interprocedural check extends collectiveorder through the call
// graph: calling a function that transitively performs collectives from
// under a rank-dependent branch diverges the collective schedule across
// ranks just as surely as a direct Bcast there would.
var CommDeadlock = &Analyzer{
	Name: "commdeadlock",
	Doc: "static communication graph: self-deadlocks, recv-before-send exchanges, unmatched tags, divergent collective calls\n\n" +
		"Models Send as eager (never blocks) and Recv as blocking, mirroring\n" +
		"the runtime. Flags receives that nothing can ever satisfy: self-recv\n" +
		"without a prior self-send, symmetric exchanges ordered Recv-first,\n" +
		"constant tags with no program-wide match, and calls into\n" +
		"collective-performing functions from rank-dependent branches.",
	RunProgram: runCommDeadlock,
}

// sendPeerOps and recvPeerOps map runtime entry points to the argument
// index of their peer rank; the tag always follows the peer. Sendrecv
// combines both directions internally in the safe order, so its halves
// participate in tag matching but are exempt from ordering checks.
var sendPeerOps = map[string]int{
	"Send": 0, "SendSized": 0, "SendGhost": 0, "Isend": 0,
	"SendFloat64s": 0, "SendFloat64sSized": 0,
}
var recvPeerOps = map[string]int{
	"Recv": 0, "RecvDiscard": 0, "Irecv": 0, "RecvFloat64s": 0,
}
var sendrecvOps = map[string]bool{
	"Sendrecv": true, "SendrecvSized": true, "SendrecvGhost": true,
	"SendrecvFloat64s": true, "SendrecvFloat64sInto": true,
}

// peerKind classifies a peer-rank expression symbolically.
type peerKind int

const (
	peerUnknown peerKind = iota
	peerConst            // literal or named constant rank
	peerOffset           // rank + k (k may be negative or zero)
	peerXor              // rank ^ k
)

type peerExpr struct {
	kind peerKind
	k    int64 // constant value, offset, or xor mask
}

// symmetric reports whether the peer expression denotes a pairwise
// exchange partner: rank^k pairs ranks bijectively; rank±k forms a shift
// chain. Offset zero is the self case, handled separately.
func (p peerExpr) symmetric() bool {
	return (p.kind == peerXor && p.k != 0) || (p.kind == peerOffset && p.k != 0)
}

// commOp is one point-to-point call site.
type commOp struct {
	site     CallSite
	name     string
	isSend   bool
	peer     peerExpr
	tag      constant.Value // nil when not compile-time constant
	tagKnown bool
	rankCond bool // guarded by a rank-dependent branch
}

func runCommDeadlock(pp *ProgramPass) error {
	prog := pp.Program

	// Pass 1: collect every comm op and every function's direct collective
	// set, in deterministic function order.
	opsByFunc := map[*Func][]commOp{}
	var allOps []commOp
	directColl := map[*Func][]string{}
	for _, f := range prog.Funcs() {
		rv := newRankVars(f)
		ops := collectCommOps(f, rv)
		if len(ops) > 0 {
			opsByFunc[f] = ops
			allOps = append(allOps, ops...)
		}
		for _, site := range f.Calls {
			if name, ok := mpiEntry(site); ok && collectiveNames[name] {
				directColl[f] = append(directColl[f], name)
			}
		}
	}

	// Intra-function ordering checks.
	for _, f := range prog.Funcs() {
		checkSelfRecv(pp, f, opsByFunc[f])
		checkExchangeOrder(pp, f, opsByFunc[f])
	}

	checkTagMatching(pp, allOps)
	checkCollectiveDivergence(pp, prog, directColl)
	return nil
}

// mpiEntry resolves a call site to an mpi runtime entry point name, by
// package name so fixtures and the real runtime match alike.
func mpiEntry(site CallSite) (string, bool) {
	obj := site.CalleeObj
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != mpiPkgName {
		return "", false
	}
	return obj.Name(), true
}

// collectCommOps gathers f's point-to-point call sites with their symbolic
// peers, constant tags, and rank-dependent-guard status.
func collectCommOps(f *Func, rv *rankVars) []commOp {
	var ops []commOp
	add := func(site CallSite, name string, isSend bool, peerArg ast.Expr, tagArg ast.Expr) {
		op := commOp{site: site, name: name, isSend: isSend,
			peer:     rv.classifyPeer(peerArg),
			rankCond: rv.underRankCond(site.Call.Pos()),
		}
		if tagArg != nil {
			if tv, ok := f.Pkg.Info.Types[tagArg]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
				op.tag, op.tagKnown = tv.Value, true
			}
		}
		ops = append(ops, op)
	}
	for _, site := range f.Calls {
		name, ok := mpiEntry(site)
		if !ok {
			continue
		}
		args := site.Call.Args
		argAt := func(i int) ast.Expr {
			if i < len(args) {
				return args[i]
			}
			return nil
		}
		switch {
		case isSendName(name):
			add(site, name, true, argAt(0), argAt(1))
		case isRecvName(name):
			add(site, name, false, argAt(0), argAt(1))
		case name == "SendGhostBatch":
			// Peer is a slice; tag is arg 1. Participates in tag matching
			// only.
			add(site, name, true, nil, argAt(1))
		case sendrecvOps[name]:
			// Sendrecv(dst, sendTag, [data,] ..., src, recvTag): internally
			// ordered send-first, so only tag matching applies. The recv tag
			// is the final int argument; the send tag is arg 1.
			op := commOp{site: site, name: name, isSend: true, peer: peerExpr{kind: peerUnknown}}
			if tv, ok := f.Pkg.Info.Types[argAt(1)]; ok && argAt(1) != nil && tv.Value != nil && tv.Value.Kind() == constant.Int {
				op.tag, op.tagKnown = tv.Value, true
			}
			ops = append(ops, op)
			rop := commOp{site: site, name: name, isSend: false, peer: peerExpr{kind: peerUnknown}}
			// Walk from the end past trailing non-int args (the Into
			// variants take a destination slice last).
			for i := len(args) - 1; i >= 0; i-- {
				tv, ok := f.Pkg.Info.Types[args[i]]
				if !ok || tv.Type == nil {
					break
				}
				if b, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && b.Info()&types.IsInteger != 0 {
					if tv.Value != nil && tv.Value.Kind() == constant.Int {
						rop.tag, rop.tagKnown = tv.Value, true
					}
					break
				}
			}
			ops = append(ops, rop)
		}
	}
	return ops
}

func isSendName(name string) bool { _, ok := sendPeerOps[name]; return ok }
func isRecvName(name string) bool { _, ok := recvPeerOps[name]; return ok }

// checkSelfRecv flags receives from the caller's own rank that no
// send-to-self can precede: the runtime buffers sends eagerly, so a
// self-exchange is legal only when the Send has already happened on every
// path reaching the Recv.
func checkSelfRecv(pp *ProgramPass, f *Func, ops []commOp) {
	var selfSends []commOp
	for _, op := range ops {
		if op.isSend && op.peer.kind == peerOffset && op.peer.k == 0 {
			selfSends = append(selfSends, op)
		}
	}
	for _, op := range ops {
		if op.isSend || !(op.peer.kind == peerOffset && op.peer.k == 0) {
			continue
		}
		// Reachable without passing a send-to-self first?
		blocked := func(n ast.Node) bool {
			for _, s := range selfSends {
				if n.Pos() <= s.site.Call.Pos() && s.site.Call.End() <= n.End() {
					return true
				}
			}
			return false
		}
		if f.CFG().ExecutesBefore(op.site.Call, blocked) {
			pp.Reportf(op.site.Call.Pos(),
				"%s from the caller's own rank can execute before any Send to self; no other rank can satisfy it", op.name)
		}
	}
}

// checkExchangeOrder flags unconditional symmetric exchanges that Recv
// before they Send: with every rank blocking in Recv, the matching Sends
// are never reached regardless of send buffering.
func checkExchangeOrder(pp *ProgramPass, f *Func, ops []commOp) {
	var sends []commOp
	for _, op := range ops {
		if op.isSend {
			sends = append(sends, op)
		}
	}
	if len(sends) == 0 {
		return
	}
	for _, op := range ops {
		if op.isSend || !op.peer.symmetric() || op.rankCond {
			continue
		}
		// A send to the same symbolic peer must exist; otherwise this is a
		// one-directional pattern (pipeline stage) and not an exchange.
		match := -1
		for i, s := range sends {
			if s.peer == op.peer {
				match = i
				break
			}
		}
		if match < 0 {
			continue
		}
		blocked := func(n ast.Node) bool {
			for _, s := range sends {
				if n.Pos() <= s.site.Call.Pos() && s.site.Call.End() <= n.End() {
					return true
				}
			}
			return false
		}
		if f.CFG().ExecutesBefore(op.site.Call, blocked) {
			pp.Reportf(op.site.Call.Pos(),
				"symmetric exchange receives from %s before sending; every rank blocks in %s and the matching Send is never reached (send first, or use Sendrecv)",
				op.peer.describe(), op.name)
		}
	}
}

// describe renders the symbolic peer for diagnostics.
func (p peerExpr) describe() string {
	switch p.kind {
	case peerConst:
		return fmt.Sprintf("rank %d", p.k)
	case peerXor:
		return fmt.Sprintf("rank^%d", p.k)
	case peerOffset:
		if p.k >= 0 {
			return fmt.Sprintf("rank+%d", p.k)
		}
		return fmt.Sprintf("rank%d", p.k)
	}
	return "an unknown peer"
}

// checkTagMatching verifies constant send tags against constant recv tags
// program-wide. The check arms per direction only when every op on the
// other side has a compile-time-constant tag (one dynamic tag could match
// anything); AnyTag (-1) receives match every send.
func checkTagMatching(pp *ProgramPass, ops []commOp) {
	const anyTag = -1
	recvAllKnown, sendAllKnown := true, true
	recvTags := map[int64]bool{}
	sendTags := map[int64]bool{}
	for _, op := range ops {
		if op.isSend {
			if !op.tagKnown {
				sendAllKnown = false
			} else if v, ok := constant.Int64Val(op.tag); ok {
				sendTags[v] = true
			}
		} else {
			if !op.tagKnown {
				recvAllKnown = false
			} else if v, ok := constant.Int64Val(op.tag); ok {
				recvTags[v] = true
			}
		}
	}
	// Sorted op order keeps reporting deterministic; ops arrive in function
	// position order already.
	for _, op := range ops {
		if !op.tagKnown {
			continue
		}
		v, ok := constant.Int64Val(op.tag)
		if !ok || v == anyTag {
			continue
		}
		if op.isSend && recvAllKnown && !recvTags[v] && !recvTags[anyTag] {
			pp.Reportf(op.site.Call.Pos(),
				"%s with tag %d: no Recv in the program uses tag %d (or AnyTag); the message can never be received", op.name, v, v)
		}
		if !op.isSend && sendAllKnown && !sendTags[v] {
			pp.Reportf(op.site.Call.Pos(),
				"%s with tag %d: no Send in the program uses tag %d; the receive can never complete", op.name, v, v)
		}
	}
}

// checkCollectiveDivergence extends collectiveorder through the call
// graph: a call to a function that transitively performs collectives,
// issued from under a rank-dependent branch, splits the collective
// schedule across ranks.
func checkCollectiveDivergence(pp *ProgramPass, prog *Program, direct map[*Func][]string) {
	// Transitive collective sets by fixpoint over static call edges.
	trans := map[*Func]map[string]bool{}
	for f, names := range direct {
		set := map[string]bool{}
		for _, n := range names {
			set[n] = true
		}
		trans[f] = set
	}
	for changed := true; changed; {
		changed = false
		for _, f := range prog.Funcs() {
			for _, site := range f.Calls {
				if site.Callee == nil {
					continue
				}
				sub := trans[site.Callee]
				if len(sub) == 0 {
					continue
				}
				set := trans[f]
				if set == nil {
					set = map[string]bool{}
					trans[f] = set
				}
				for n := range sub {
					if !set[n] {
						set[n] = true
						changed = true
					}
				}
			}
		}
	}

	for _, f := range prog.Funcs() {
		rv := newRankVars(f)
		for _, site := range f.Calls {
			callee := site.Callee
			if callee == nil || callee.Pkg.Types.Name() == mpiPkgName {
				// Direct runtime collectives under rank branches are
				// collectiveorder's findings; re-flagging them here would
				// double-report.
				continue
			}
			set := trans[callee]
			if len(set) == 0 {
				continue
			}
			if !rv.underRankCond(site.Call.Pos()) {
				continue
			}
			names := make([]string, 0, len(set))
			for n := range set {
				names = append(names, n)
			}
			sort.Strings(names)
			pp.Reportf(site.Call.Pos(),
				"call to %s under a rank-dependent branch performs collectives (%s); ranks taking the other branch diverge from the collective schedule",
				callee.Name(), joinNames(names))
		}
	}
}

// joinNames joins up to four names, eliding the rest.
func joinNames(names []string) string {
	if len(names) > 4 {
		return fmt.Sprintf("%s, … %d more", joinNames(names[:4]), len(names)-4)
	}
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// rankVars tracks, within one function, which variables hold (values
// derived from) the caller's rank, which conditionals branch on them, and
// the symbolic shape of peer expressions. The recognition mirrors
// collectiveorder's intra-function walk so the two passes agree on what
// "rank-dependent" means.
type rankVars struct {
	f    *Func
	vars map[types.Object]bool
	// defs maps each variable to its unique defining expression; variables
	// assigned more than once map to nil and classify as unknown.
	defs map[types.Object]ast.Expr
	// rankConds are the source ranges of if/switch bodies guarded by a
	// rank-dependent condition.
	rankConds []posRange
}

type posRange struct{ lo, hi token.Pos }

func newRankVars(f *Func) *rankVars {
	rv := &rankVars{f: f, vars: map[types.Object]bool{}, defs: map[types.Object]ast.Expr{}}
	info := f.Pkg.Info

	// Record each variable's defining expression; a second assignment
	// poisons the entry so classifyPeer stays conservative.
	inspectShallow(f.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if _, seen := rv.defs[obj]; seen {
				rv.defs[obj] = nil
			} else {
				rv.defs[obj] = as.Rhs[i]
			}
		}
		return true
	})

	// Seed: variables assigned from Rank()/WorldRank() calls; iterate to a
	// fixpoint so rank arithmetic chains (left := rank - 1) propagate.
	for changed := true; changed; {
		changed = false
		inspectShallow(f.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || rv.vars[obj] {
					continue
				}
				if rv.mentionsRank(as.Rhs[i]) {
					rv.vars[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	// Record rank-guarded regions.
	inspectShallow(f.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			if rv.mentionsRank(s.Cond) {
				rv.rankConds = append(rv.rankConds, posRange{s.Body.Pos(), s.Body.End()})
				if s.Else != nil {
					rv.rankConds = append(rv.rankConds, posRange{s.Else.Pos(), s.Else.End()})
				}
			}
		case *ast.SwitchStmt:
			if s.Tag != nil && rv.mentionsRank(s.Tag) {
				rv.rankConds = append(rv.rankConds, posRange{s.Body.Pos(), s.Body.End()})
			}
		}
		return true
	})
	return rv
}

// mentionsRank reports whether e contains a Rank()/WorldRank() call or a
// variable derived from one.
func (rv *rankVars) mentionsRank(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Rank" || sel.Sel.Name == "WorldRank" {
					found = true
				}
			}
		case *ast.Ident:
			obj := rv.f.Pkg.Info.Uses[n]
			if obj != nil && rv.vars[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// underRankCond reports whether pos sits inside a rank-guarded region.
func (rv *rankVars) underRankCond(pos token.Pos) bool {
	for _, r := range rv.rankConds {
		if r.lo <= pos && pos < r.hi {
			return true
		}
	}
	return false
}

// classifyPeer reduces a peer-rank argument to symbolic form, resolving
// through uniquely-assigned local variables: peer := rank ^ 1 classifies
// the Recv(peer, ...) argument as rank^1.
func (rv *rankVars) classifyPeer(e ast.Expr) peerExpr {
	return rv.classify(e, 0)
}

func (rv *rankVars) classify(e ast.Expr, depth int) peerExpr {
	if e == nil || depth > 8 {
		return peerExpr{kind: peerUnknown}
	}
	info := rv.f.Pkg.Info
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, ok := constant.Int64Val(tv.Value); ok {
			return peerExpr{kind: peerConst, k: v}
		}
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Rank" || sel.Sel.Name == "WorldRank" {
				return peerExpr{kind: peerOffset, k: 0}
			}
		}
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if def, ok := rv.defs[obj]; ok && def != nil {
			return rv.classify(def, depth+1)
		}
	case *ast.BinaryExpr:
		x := rv.classify(e.X, depth+1)
		y := rv.classify(e.Y, depth+1)
		switch e.Op {
		case token.ADD:
			if x.kind == peerOffset && y.kind == peerConst {
				return peerExpr{kind: peerOffset, k: x.k + y.k}
			}
			if y.kind == peerOffset && x.kind == peerConst {
				return peerExpr{kind: peerOffset, k: y.k + x.k}
			}
		case token.SUB:
			if x.kind == peerOffset && y.kind == peerConst {
				return peerExpr{kind: peerOffset, k: x.k - y.k}
			}
		case token.XOR:
			if x.kind == peerOffset && x.k == 0 && y.kind == peerConst {
				return peerExpr{kind: peerXor, k: y.k}
			}
			if y.kind == peerOffset && y.k == 0 && x.kind == peerConst {
				return peerExpr{kind: peerXor, k: x.k}
			}
		}
	}
	return peerExpr{kind: peerUnknown}
}
