package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/convolution"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/prof"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/verify"
)

// ConvOptions configures the convolution scaling study of §5.1.
type ConvOptions struct {
	// Ps are the MPI process counts to sweep.
	Ps []int
	// Steps is the number of convolution time-steps per run.
	Steps int
	// Reps averages each point over this many repetitions with distinct
	// seeds ("runs were done twenty times and averaged" — default 3 keeps
	// the harness fast while still smoothing jitter).
	Reps int
	// Scale divides the executed image dimensions.
	Scale int
	// Seed is the base seed; rep r uses Seed+r.
	Seed uint64
	// Model is the machine (default: the Nehalem cluster of the paper).
	Model *machine.Model
	// Jobs bounds the worker pool running sweep points concurrently
	// (sched.Workers semantics: 0 selects the process default). Results are
	// independent of the value.
	Jobs int
	// Diagnose attaches a trace collector to each point's rep-0 run and
	// reports the binding section's wait-state diagnosis in the CSV.
	Diagnose bool
	// Profile attaches the constant-memory streaming telemetry tool to each
	// point's rep-0 run; the resulting summaries land in ConvPoint.Profile.
	// Unlike Diagnose this never buffers an event stream, so it composes
	// with the extreme-scale sweeps.
	Profile bool
	// Verify attaches the runtime section/collective verifier to every run;
	// violations accumulate in ConvResult.Verify (the -verify bench flag).
	Verify bool
	// Fault arms a deterministic fault plan in every point's runtime; points
	// whose runs fail degrade to an `error` CSV cell instead of aborting the
	// sweep.
	Fault *fault.Plan
	// Deadline arms the per-run deadlock detector (default 30s when Fault is
	// set, off otherwise).
	Deadline time.Duration
	// TwoD runs the 2-D domain decomposition (convolution.Run2D) instead of
	// the paper's 1-D split. Required past the 1-D geometry limit (the
	// executed image height caps 1-D rank counts near the paper's scales).
	TwoD bool
	// Lazy enables session-style lazy rank bring-up in every run
	// (mpi.Config.Lazy): virtual times and CSV bytes are unchanged; real
	// start-up cost stops scaling with the declared rank count.
	Lazy bool
}

// PaperConvOptions reproduces the paper's setup: the 5616×3744 image,
// 1000 steps, up to 456 cores of the Nehalem cluster.
func PaperConvOptions() ConvOptions {
	return ConvOptions{
		Ps:       []int{8, 16, 32, 64, 80, 96, 112, 128, 144, 192, 256, 320, 456},
		Steps:    1000,
		Reps:     3,
		Scale:    8,
		Seed:     2017,
		Model:    machine.NehalemCluster(),
		Diagnose: true,
	}
}

// QuickConvOptions is a reduced sweep for tests and smoke runs. Speedups
// and bounds are ratios of per-step quantities, so shapes survive the
// shorter run.
func QuickConvOptions() ConvOptions {
	return ConvOptions{
		Ps:       []int{2, 4, 8, 16},
		Steps:    40,
		Reps:     1,
		Scale:    16,
		Seed:     2017,
		Model:    machine.NehalemCluster(),
		Diagnose: true,
	}
}

// ConvPoint is one measured scale, averaged over repetitions.
type ConvPoint struct {
	P       int
	Wall    float64
	Speedup float64
	// Totals: summed-over-ranks inclusive section time (Fig. 5(b), Fig. 6).
	Totals map[string]float64
	// AvgPerProc: Totals / P (Fig. 5(c)).
	AvgPerProc map[string]float64
	// Shares: fraction of total exclusive time (Fig. 5(a)).
	Shares map[string]float64
	// Diag is the rep-0 wait-state diagnosis (nil with Diagnose off).
	Diag *PointDiagnosis
	// Profile is the rep-0 streaming telemetry summary (nil with Profile
	// off, and for failed points).
	Profile *telemetry.Profile
	// Err is the root cause of the first failed repetition ("" for a healthy
	// point). A failed point keeps zero metrics and is excluded from the
	// bound study, but the sweep itself completes.
	Err string
}

// ConvResult is the full study.
type ConvResult struct {
	Opts    ConvOptions
	SeqTime float64
	Points  []ConvPoint
	Study   *core.Study
	// Verify holds every runtime-verifier violation across the sweep's runs,
	// canonically sorted (empty without Opts.Verify, and for a clean sweep).
	Verify []verify.Violation
}

// RunConvolution executes the sweep and assembles the partial-bounding
// study.
func RunConvolution(o ConvOptions) (*ConvResult, error) {
	if o.Model == nil {
		o.Model = machine.NehalemCluster()
	}
	if o.Reps < 1 {
		o.Reps = 1
	}
	params := convolution.Params{
		Width: 5616, Height: 3744,
		Steps: o.Steps, Scale: o.Scale, Seed: o.Seed, SkipKernel: true,
	}
	seq, err := seqBaselineCached(params, o.Model)
	if err != nil {
		return nil, err
	}
	study, err := core.NewStudy(seq)
	if err != nil {
		return nil, err
	}
	res := &ConvResult{Opts: o, SeqTime: seq, Study: study}

	// One job per (p, rep): every simulation is an independent virtual-time
	// run, so the sweep fans out on the worker pool. Folding happens below,
	// sequentially and in the original (p, rep) order — fp addition order
	// and study insertion order are those of the sequential sweep, so the
	// output bytes are identical for every Jobs value.
	type repResult struct {
		wall    float64
		totals  map[string]float64
		shares  map[string]float64
		diag    *PointDiagnosis
		profile *telemetry.Profile
		verify  []verify.Violation
		errMsg  string
	}
	reps, err := sched.Map(sched.Workers(o.Jobs), len(o.Ps)*o.Reps, func(i int) (repResult, error) {
		p := o.Ps[i/o.Reps]
		rep := i % o.Reps
		profiler := prof.New()
		cfg := mpi.Config{
			Ranks:   p,
			Model:   o.Model,
			Seed:    o.Seed + uint64(rep)*7919,
			Tools:   []mpi.Tool{profiler},
			Timeout: 10 * time.Minute,
			Lazy:    o.Lazy,
		}
		applyFault(&cfg, o.Fault, o.Deadline)
		ver := attachVerifier(&cfg, o.Verify)
		// The rep-0 run doubles as the diagnosis specimen: tools observe the
		// virtual clocks without perturbing them, so attaching the collector
		// leaves the measured times bit-identical.
		var collector *trace.Collector
		if o.Diagnose && rep == 0 {
			collector = newDiagCollector()
			cfg.Tools = append(cfg.Tools, collector)
		}
		var tele *telemetry.Tool
		if o.Profile && rep == 0 {
			tele = telemetry.New(telemetry.Options{SeqTime: seq})
			cfg.Tools = append(cfg.Tools, tele)
		}
		runConv := convolution.Run
		if o.TwoD {
			runConv = convolution.Run2D
		}
		if _, err := runConv(cfg, params); err != nil {
			// Degraded mode: the point records its root cause and the sweep
			// carries on — returning the error would abort every other point.
			return repResult{errMsg: runErrCell(err), verify: verifierViolations(ver)}, nil
		}
		profile, err := profiler.Result()
		if err != nil {
			return repResult{}, err
		}
		out := repResult{
			wall:   profile.WallTime,
			totals: map[string]float64{},
			shares: map[string]float64{},
		}
		shares := profile.Shares()
		for _, label := range convolution.Labels() {
			if s := profile.Section(label); s != nil {
				out.totals[label] = s.TotalTime()
				out.shares[label] = shares[label]
			}
		}
		if collector != nil {
			out.diag = diagnoseEvents(collector.Buffer().Events(), seq)
		}
		if tele != nil {
			out.profile = tele.Snapshot()
		}
		out.verify = verifierViolations(ver)
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	// Collect verifier findings in sequential (p, rep) order, then impose
	// the canonical sort — identical bytes for every Jobs value.
	for _, r := range reps {
		res.Verify = append(res.Verify, r.verify...)
	}
	verify.SortViolations(res.Verify)

	for pi, p := range o.Ps {
		pt := ConvPoint{
			P:          p,
			Totals:     map[string]float64{},
			AvgPerProc: map[string]float64{},
			Shares:     map[string]float64{},
		}
		pt.Diag = reps[pi*o.Reps].diag
		pt.Profile = reps[pi*o.Reps].profile
		for rep := 0; rep < o.Reps; rep++ {
			job := reps[pi*o.Reps+rep]
			if job.errMsg != "" && pt.Err == "" {
				pt.Err = fmt.Sprintf("p=%d rep=%d: %s", p, rep, job.errMsg)
			}
			pt.Wall += job.wall
			for _, label := range convolution.Labels() {
				if t, ok := job.totals[label]; ok {
					pt.Totals[label] += t
					pt.Shares[label] += job.shares[label]
				}
			}
		}
		if pt.Err != "" {
			// A failed repetition poisons the point's averages: report the
			// root cause, keep the metrics zero, and leave the bound study to
			// the points that completed.
			pt.Wall, pt.Speedup = 0, 0
			pt.Totals = map[string]float64{}
			pt.AvgPerProc = map[string]float64{}
			pt.Shares = map[string]float64{}
			pt.Diag = nil
			pt.Profile = nil
			res.Points = append(res.Points, pt)
			continue
		}
		inv := 1 / float64(o.Reps)
		pt.Wall *= inv
		for label := range pt.Totals {
			pt.Totals[label] *= inv
			pt.Shares[label] *= inv
			pt.AvgPerProc[label] = pt.Totals[label] / float64(p)
		}
		pt.Speedup = seq / pt.Wall
		if err := study.AddPoint(p, pt.Wall, pt.Totals); err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	sort.Slice(res.Points, func(i, j int) bool { return res.Points[i].P < res.Points[j].P })
	return res, nil
}

// sectionColumns is the section ordering of the Fig. 5 tables.
func sectionColumns() []string { return convolution.Labels() }

// Fig5a renders the percentage of execution time per section vs. process
// count — the paper's Fig. 5(a).
func (r *ConvResult) Fig5a() string {
	t := newTable(append([]string{"#procs"}, sectionColumns()...)...)
	for _, pt := range r.Points {
		cells := []string{fmt.Sprintf("%d", pt.P)}
		for _, label := range sectionColumns() {
			cells = append(cells, fmt.Sprintf("%.2f%%", 100*pt.Shares[label]))
		}
		t.addRow(cells...)
	}
	return "Fig 5(a) — percentage of execution time per MPI Section\n" + t.String()
}

// Fig5b renders the total (summed over ranks) time per section — Fig. 5(b).
func (r *ConvResult) Fig5b() string {
	t := newTable(append([]string{"#procs"}, sectionColumns()...)...)
	for _, pt := range r.Points {
		cells := []string{fmt.Sprintf("%d", pt.P)}
		for _, label := range sectionColumns() {
			cells = append(cells, fmt.Sprintf("%.4g", pt.Totals[label]))
		}
		t.addRow(cells...)
	}
	return "Fig 5(b) — total time per MPI Section (s, summed over ranks)\n" + t.String()
}

// Fig5c renders the average per-process time per section — Fig. 5(c).
func (r *ConvResult) Fig5c() string {
	t := newTable(append([]string{"#procs"}, sectionColumns()...)...)
	for _, pt := range r.Points {
		cells := []string{fmt.Sprintf("%d", pt.P)}
		for _, label := range sectionColumns() {
			cells = append(cells, fmt.Sprintf("%.4g", pt.AvgPerProc[label]))
		}
		t.addRow(cells...)
	}
	return fmt.Sprintf("Fig 5(c) — average time per process per MPI Section (s); sequential total %.6g s\n",
		r.SeqTime) + t.String()
}

// Fig5d renders the measured speedup next to the HALO partial bound B(p) —
// Fig. 5(d).
func (r *ConvResult) Fig5d() string {
	t := newTable("#procs", "speedup", "HALO bound B(p)")
	rows := map[int]float64{}
	for _, row := range r.Study.BoundTable(convolution.SecHalo) {
		rows[row.Scale] = row.Bound
	}
	for _, pt := range r.Points {
		bound := "-"
		if b, ok := rows[pt.P]; ok {
			bound = fmt.Sprintf("%.4g", b)
		}
		t.addRow(fmt.Sprintf("%d", pt.P), fmt.Sprintf("%.4g", pt.Speedup), bound)
	}
	return "Fig 5(d) — average speedup and predicted partial speedup boundaries (HALO)\n" + t.String()
}

// fig6Scales are the process counts of the paper's Fig. 6 table.
var fig6Scales = []int{64, 80, 112, 128, 144}

// Fig6 renders the inferred partial speedup boundaries from the HALO time —
// the paper's Fig. 6 table.
func (r *ConvResult) Fig6() string {
	t := newTable("#Processes", "Tot. HALO Time", "Speedup Bound (B)")
	for _, row := range r.Study.BoundTable(convolution.SecHalo) {
		if !contains(fig6Scales, row.Scale) && len(r.Points) > 6 {
			continue
		}
		t.addRow(fmt.Sprintf("%d", row.Scale),
			fmt.Sprintf("%.2f", row.Total), fmt.Sprintf("%.2f", row.Bound))
	}
	return "Fig 6 — inferred partial speedup boundaries from HALO section\n" + t.String()
}

// FitReport fits the three-term law T(p) = A + B/p + C·p (core.FitSectionTime)
// to each section's per-process time and reports the fitted coefficients,
// the fit quality, and — where the law has an interior minimum — the
// predicted inflexion scale. This extends the paper's empirical inflexion
// detection with a forecast usable before the section has stopped scaling.
func (r *ConvResult) FitReport() string {
	t := newTable("section", "A (serial s)", "B (parallel s)", "C (overhead s/p)",
		"RMSE", "predicted p*")
	for _, label := range sectionColumns() {
		fit, pStar, ok, err := r.Study.PredictStudyInflexion(label)
		if err != nil {
			continue
		}
		pCell := "- (monotone)"
		if ok {
			pCell = fmt.Sprintf("%.4g", pStar)
		}
		t.addRow(label,
			fmt.Sprintf("%.4g", fit.A), fmt.Sprintf("%.4g", fit.B),
			fmt.Sprintf("%.4g", fit.C), fmt.Sprintf("%.3g", fit.RMSE), pCell)
	}
	return "Section-time model fits T(p) = A + B/p + C·p and predicted inflexions\n" + t.String()
}

// WriteCSV emits every point with all per-section columns plus the
// wait-state diagnosis block (blank when Diagnose was off).
func (r *ConvResult) WriteCSV(w io.Writer) error {
	cols := sectionColumns()
	header := []string{"p", "wall", "speedup"}
	for _, c := range cols {
		header = append(header, "total_"+c, "share_"+c)
	}
	header = append(header, diagHeader()...)
	header = append(header, "error")
	if _, err := io.WriteString(w, csvLine(header...)); err != nil {
		return err
	}
	for _, pt := range r.Points {
		cells := []string{
			fmt.Sprintf("%d", pt.P),
			fmt.Sprintf("%g", pt.Wall),
			fmt.Sprintf("%g", pt.Speedup),
		}
		for _, c := range cols {
			cells = append(cells, fmt.Sprintf("%g", pt.Totals[c]), fmt.Sprintf("%g", pt.Shares[c]))
		}
		cells = append(cells, pt.Diag.csvCells()...)
		cells = append(cells, csvEscape(pt.Err))
		if _, err := io.WriteString(w, csvLine(cells...)); err != nil {
			return err
		}
	}
	return nil
}

// LargestProfile returns the streaming telemetry summary of the largest
// completed point (nil when Opts.Profile was off or every point failed).
func (r *ConvResult) LargestProfile() *telemetry.Profile {
	for i := len(r.Points) - 1; i >= 0; i-- {
		if r.Points[i].Profile != nil {
			return r.Points[i].Profile
		}
	}
	return nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
