package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/convolution"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/prof"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/verify"
)

// Decomposition ablation: the paper's §3 ties communication overhead to
// the decomposition's halo volume ("the halo-cells ratio directly linked
// with communication size is smaller for large memory areas... higher
// dimension domain decompositions require larger local domains"). This
// driver runs the convolution benchmark with 1-D and 2-D splits at the
// same scales and compares the modeled halo volume with the measured HALO
// section — the quantity partial bounding turns into a speedup ceiling.

// DecompPoint is one scale of the comparison.
type DecompPoint struct {
	P       int
	Grid    string // "1×p" vs "px×py"
	Bytes1D int    // modeled per-process halo volume per step
	Bytes2D int
	Halo1D  float64 // measured avg per-process HALO time
	Halo2D  float64
	Wall1D  float64
	Wall2D  float64
	// Diag1D / Diag2D are the per-variant wait-state diagnoses (nil with
	// Diagnose off).
	Diag1D *PointDiagnosis
	Diag2D *PointDiagnosis
	// Err1D / Err2D carry each variant's root cause ("" when healthy).
	Err1D string
	Err2D string
}

// DecompResult is the sweep.
type DecompResult struct {
	Points []DecompPoint
	// Verify holds every runtime-verifier violation across both variants'
	// runs, canonically sorted (empty without Opts.Verify, and for a clean
	// comparison).
	Verify []verify.Violation
}

// DecompOptions configures the comparison.
type DecompOptions struct {
	Ps    []int
	Steps int
	Scale int
	Seed  uint64
	Model *machine.Model
	// Jobs bounds the worker pool (sched.Workers semantics).
	Jobs int
	// Diagnose attaches a trace collector per run and reports the binding
	// section's wait-state diagnosis in the CSV.
	Diagnose bool
	// Verify attaches the runtime section/collective verifier to every run;
	// violations accumulate in DecompResult.Verify (the -verify bench flag).
	Verify bool
	// Fault arms a deterministic fault plan; failed variants degrade to an
	// `error` CSV cell instead of aborting the comparison.
	Fault *fault.Plan
	// Deadline arms the per-run deadlock detector (default 30s when Fault is
	// set, off otherwise).
	Deadline time.Duration
}

// QuickDecompOptions is a reduced comparison for tests.
func QuickDecompOptions() DecompOptions {
	return DecompOptions{
		Ps:       []int{4, 16},
		Steps:    20,
		Scale:    16,
		Seed:     2017,
		Model:    machine.NehalemCluster(),
		Diagnose: true,
	}
}

// PaperDecompOptions compares at the paper's scales.
func PaperDecompOptions() DecompOptions {
	return DecompOptions{
		Ps:    []int{16, 64, 144, 256},
		Steps: 200,
		Scale: 8,
		Seed:  2017,
		Model: machine.NehalemCluster(),
	}
}

// RunDecompComparison executes the comparison.
func RunDecompComparison(o DecompOptions) (*DecompResult, error) {
	if o.Model == nil {
		o.Model = machine.NehalemCluster()
	}
	params := convolution.Params{
		Width: 5616, Height: 3744,
		Steps: o.Steps, Scale: o.Scale, Seed: o.Seed, SkipKernel: true,
	}
	grids := make([][2]int, len(o.Ps))
	for i, p := range o.Ps {
		px, py, err := convolution.Grid2D(p)
		if err != nil {
			return nil, err
		}
		grids[i] = [2]int{px, py}
	}
	// Two jobs per scale — the 1-D and 2-D runs are independent of each
	// other too, so both decompositions fan out on the worker pool.
	type variantResult struct {
		halo, wall float64
		diag       *PointDiagnosis
		verify     []verify.Violation
		errMsg     string
	}
	runs, err := sched.Map(sched.Workers(o.Jobs), 2*len(o.Ps), func(i int) (variantResult, error) {
		p := o.Ps[i/2]
		runner := convolution.Run
		if i%2 == 1 {
			runner = convolution.Run2D
		}
		profiler := prof.New()
		cfg := mpi.Config{
			Ranks: p, Model: o.Model, Seed: o.Seed,
			Tools: []mpi.Tool{profiler}, Timeout: 10 * time.Minute,
		}
		applyFault(&cfg, o.Fault, o.Deadline)
		ver := attachVerifier(&cfg, o.Verify)
		var collector *trace.Collector
		if o.Diagnose {
			collector = newDiagCollector()
			cfg.Tools = append(cfg.Tools, collector)
		}
		if _, err := runner(cfg, params); err != nil {
			// Degraded mode: record the root cause, let the sweep carry on;
			// the CSV row's variant column names the failed decomposition.
			return variantResult{errMsg: runErrCell(err), verify: verifierViolations(ver)}, nil
		}
		profile, err := profiler.Result()
		if err != nil {
			return variantResult{}, err
		}
		out := variantResult{
			halo: profile.Section(convolution.SecHalo).AvgPerProcess(),
			wall: profile.WallTime,
		}
		if collector != nil {
			out.diag = diagnoseEvents(collector.Buffer().Events(), 0)
		}
		out.verify = verifierViolations(ver)
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	res := &DecompResult{}
	for _, r := range runs {
		res.Verify = append(res.Verify, r.verify...)
	}
	verify.SortViolations(res.Verify)
	for i, p := range o.Ps {
		px, py := grids[i][0], grids[i][1]
		res.Points = append(res.Points, DecompPoint{
			P:       p,
			Grid:    fmt.Sprintf("%dx%d", px, py),
			Bytes1D: params.Halo1DBytesPerProc(),
			Bytes2D: params.Halo2DBytesPerProc(px, py),
			Halo1D:  runs[2*i].halo,
			Wall1D:  runs[2*i].wall,
			Diag1D:  runs[2*i].diag,
			Err1D:   runs[2*i].errMsg,
			Halo2D:  runs[2*i+1].halo,
			Wall2D:  runs[2*i+1].wall,
			Diag2D:  runs[2*i+1].diag,
			Err2D:   runs[2*i+1].errMsg,
		})
	}
	return res, nil
}

// Table renders the comparison.
func (r *DecompResult) Table() string {
	t := newTable("p", "2D grid", "halo B/proc 1D", "halo B/proc 2D",
		"HALO/proc 1D (s)", "HALO/proc 2D (s)", "wall 1D (s)", "wall 2D (s)")
	for _, pt := range r.Points {
		t.addRow(
			fmt.Sprintf("%d", pt.P),
			pt.Grid,
			fmt.Sprintf("%d", pt.Bytes1D),
			fmt.Sprintf("%d", pt.Bytes2D),
			fmt.Sprintf("%.4g", pt.Halo1D),
			fmt.Sprintf("%.4g", pt.Halo2D),
			fmt.Sprintf("%.4g", pt.Wall1D),
			fmt.Sprintf("%.4g", pt.Wall2D),
		)
	}
	return "Decomposition ablation (§3): 1-D rows vs 2-D tiles\n" + t.String()
}

// WriteCSV emits the comparison as one row per (p, variant) so the
// diagnosis block applies to a single decomposition at a time.
func (r *DecompResult) WriteCSV(w io.Writer) error {
	header := append([]string{"p", "variant", "grid", "halo_bytes_per_proc", "halo_avg", "wall"}, diagHeader()...)
	header = append(header, "error")
	if _, err := io.WriteString(w, csvLine(header...)); err != nil {
		return err
	}
	for _, pt := range r.Points {
		rows := []struct {
			variant string
			grid    string
			bytes   int
			halo    float64
			wall    float64
			diag    *PointDiagnosis
			errMsg  string
		}{
			{"1d", fmt.Sprintf("1x%d", pt.P), pt.Bytes1D, pt.Halo1D, pt.Wall1D, pt.Diag1D, pt.Err1D},
			{"2d", pt.Grid, pt.Bytes2D, pt.Halo2D, pt.Wall2D, pt.Diag2D, pt.Err2D},
		}
		for _, row := range rows {
			cells := []string{
				fmt.Sprintf("%d", pt.P),
				row.variant,
				row.grid,
				fmt.Sprintf("%d", row.bytes),
				fmt.Sprintf("%g", row.halo),
				fmt.Sprintf("%g", row.wall),
			}
			cells = append(cells, row.diag.csvCells()...)
			cells = append(cells, csvEscape(row.errMsg))
			if _, err := io.WriteString(w, csvLine(cells...)); err != nil {
				return err
			}
		}
	}
	return nil
}
