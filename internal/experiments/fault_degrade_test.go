package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fault"
)

// The degraded-mode contract: one injected rank failure kills exactly the
// sweep points whose worlds contain that rank; every other point completes
// and the CSV carries the failure in a single trailing `error` column.

// assertErrorColumnOnce checks the fixed degraded-CSV schema: the header
// names `error` exactly once, as its last column.
func assertErrorColumnOnce(t *testing.T, csv []byte) {
	t.Helper()
	header := strings.SplitN(string(csv), "\n", 2)[0]
	cols := strings.Split(header, ",")
	n := 0
	for _, c := range cols {
		if c == "error" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("header has %d `error` columns, want 1: %q", n, header)
	}
	if cols[len(cols)-1] != "error" {
		t.Fatalf("`error` is not the last column: %q", header)
	}
}

func TestConvSweepSurvivesKilledRank(t *testing.T) {
	o := QuickConvOptions() // Ps = 2, 4, 8, 16
	plan, err := fault.ParseSpec("kill:rank=8,after=5", 1)
	if err != nil {
		t.Fatal(err)
	}
	o.Fault = plan
	res, err := RunConvolution(o)
	if err != nil {
		t.Fatalf("degraded sweep aborted: %v", err)
	}
	if len(res.Points) != len(o.Ps) {
		t.Fatalf("got %d points, want %d", len(res.Points), len(o.Ps))
	}
	for _, pt := range res.Points {
		// Rank 8 only exists in the p=16 world; everything smaller is healthy.
		if pt.P <= 8 {
			if pt.Err != "" {
				t.Errorf("p=%d unexpectedly failed: %s", pt.P, pt.Err)
			}
			if pt.Speedup <= 0 {
				t.Errorf("p=%d healthy point has speedup %g", pt.P, pt.Speedup)
			}
			continue
		}
		if pt.Err == "" {
			t.Errorf("p=%d should have died to the injected kill", pt.P)
		}
		if !strings.Contains(pt.Err, "rank 8") {
			t.Errorf("p=%d error does not name the killed rank: %s", pt.P, pt.Err)
		}
		if pt.Speedup != 0 || pt.Wall != 0 {
			t.Errorf("p=%d failed point kept metrics: wall=%g speedup=%g", pt.P, pt.Wall, pt.Speedup)
		}
	}
	// The bound study only holds the surviving points.
	if rows := res.Study.BoundTable("HALO"); len(rows) != 3 {
		t.Errorf("bound table has %d rows, want 3 surviving scales", len(rows))
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	assertErrorColumnOnce(t, buf.Bytes())
	if !strings.Contains(buf.String(), "rank 8") {
		t.Error("CSV does not carry the failure root cause")
	}
}

// TestFaultSweepDeterministicAcrossWorkers extends the scheduler-port
// invariant to degraded runs: with a seeded probabilistic fault plan armed,
// the sweep CSV — including every injected delay's effect on the virtual
// clocks and the error cells of killed points — must be byte-identical at
// -j 1 and -j 8.
func TestFaultSweepDeterministicAcrossWorkers(t *testing.T) {
	run := func(jobs int) []byte {
		o := QuickConvOptions()
		o.Jobs = jobs
		plan, err := fault.ParseSpec(
			"delay:src=*,dst=*,prob=0.2,secs=2e-6;kill:rank=8,after=40", 1234)
		if err != nil {
			t.Fatal(err)
		}
		o.Fault = plan
		res, err := RunConvolution(o)
		if err != nil {
			t.Fatalf("RunConvolution(jobs=%d): %v", jobs, err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := run(1)
	par := run(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("faulty sweep CSV differs between -j 1 and -j 8:\n-j 1:\n%s\n-j 8:\n%s", seq, par)
	}
	if !strings.Contains(string(seq), "rank 8") {
		t.Fatal("fault plan did not fire (no killed point in CSV)")
	}
}

// TestWeakSweepSurvivesFailedBaseline: even the p=1 baseline dying leaves a
// complete CSV (efficiency columns zero, error cells set) instead of an
// aborted sweep.
func TestWeakSweepSurvivesFailedBaseline(t *testing.T) {
	o := QuickWeakOptions()
	// A p=1 run performs no point-to-point ops, so an op-count kill would
	// never fire there; killing at CONVOLVE entry hits every world size.
	plan, err := fault.ParseSpec("kill:rank=0,section=CONVOLVE", 1)
	if err != nil {
		t.Fatal(err)
	}
	o.Fault = plan
	res, err := RunWeakConvolution(o)
	if err != nil {
		t.Fatalf("degraded weak sweep aborted: %v", err)
	}
	if len(res.Points) != len(o.Ps) {
		t.Fatalf("got %d points, want %d", len(res.Points), len(o.Ps))
	}
	for _, pt := range res.Points {
		if pt.Err == "" {
			t.Errorf("p=%d survived a kill of rank 0", pt.P)
		}
		if pt.Efficiency != 0 {
			t.Errorf("p=%d failed point kept efficiency %g", pt.P, pt.Efficiency)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	assertErrorColumnOnce(t, buf.Bytes())
}
