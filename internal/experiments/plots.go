package experiments

import (
	"fmt"

	"repro/internal/chart"
	"repro/internal/convolution"
)

// PlotSpeedup renders Fig. 5(d) as an ASCII chart: measured speedup and the
// HALO partial bound against the process count (log-x).
func (r *ConvResult) PlotSpeedup() (string, error) {
	var ps, sp []float64
	for _, pt := range r.Points {
		ps = append(ps, float64(pt.P))
		sp = append(sp, pt.Speedup)
	}
	var bx, by []float64
	for _, row := range r.Study.BoundTable(convolution.SecHalo) {
		bx = append(bx, float64(row.Scale))
		by = append(by, row.Bound)
	}
	return chart.Render(chart.Options{
		Title:  "Fig 5(d) — speedup and HALO partial bound",
		LogX:   true,
		LogY:   true,
		XLabel: "MPI processes",
		YLabel: "speedup",
	},
		chart.Series{Name: "measured speedup", X: ps, Y: sp},
		chart.Series{Name: "HALO bound B(p)", X: bx, Y: by},
	)
}

// PlotSections renders Fig. 5(c): average per-process time of the two
// dominant sections against the process count (log-log).
func (r *ConvResult) PlotSections() (string, error) {
	series := make([]chart.Series, 0, 2)
	for _, label := range []string{convolution.SecConvolve, convolution.SecHalo} {
		var xs, ys []float64
		for _, pt := range r.Points {
			xs = append(xs, float64(pt.P))
			ys = append(ys, pt.AvgPerProc[label])
		}
		series = append(series, chart.Series{Name: label, X: xs, Y: ys})
	}
	return chart.Render(chart.Options{
		Title:  "Fig 5(c) — average time per process per section",
		LogX:   true,
		LogY:   true,
		XLabel: "MPI processes",
		YLabel: "seconds",
	}, series...)
}

// Plot renders the Fig. 10 panel: walltime and the two Lagrange sections
// against the thread count (log-x), with the speedup curve.
func (a *Fig10Analysis) Plot() (string, error) {
	xs := make([]float64, len(a.Threads))
	for i, th := range a.Threads {
		xs[i] = float64(th)
	}
	timesPlot, err := chart.Render(chart.Options{
		Title:  "Fig 10 — walltime and Lagrange sections vs OpenMP threads",
		LogX:   true,
		LogY:   true,
		XLabel: "OpenMP threads",
		YLabel: "seconds",
	},
		chart.Series{Name: "walltime", X: xs, Y: a.Wall},
		chart.Series{Name: "LagrangeNodal", X: xs, Y: a.Nodal},
		chart.Series{Name: "LagrangeElements", X: xs, Y: a.Elements},
	)
	if err != nil {
		return "", err
	}
	speedupPlot, err := chart.Render(chart.Options{
		Title:  "Fig 10 — speedup vs OpenMP threads",
		LogX:   true,
		XLabel: "OpenMP threads",
		YLabel: "speedup",
	}, chart.Series{Name: "speedup", X: xs, Y: a.Speedup})
	if err != nil {
		return "", err
	}
	return timesPlot + "\n" + speedupPlot, nil
}

// PlotWalltimes renders the Figs. 8/9 walltime curves: one series per MPI
// process count, over the thread sweep (log-log).
func (r *HybridResult) PlotWalltimes(caption string) (string, error) {
	byRanks := map[int]*chart.Series{}
	var order []int
	for _, pt := range r.Points {
		s := byRanks[pt.Ranks]
		if s == nil {
			s = &chart.Series{Name: fmt.Sprintf("p=%d", pt.Ranks)}
			byRanks[pt.Ranks] = s
			order = append(order, pt.Ranks)
		}
		s.X = append(s.X, float64(pt.Threads))
		s.Y = append(s.Y, pt.Wall)
	}
	series := make([]chart.Series, 0, len(order))
	for _, rk := range order {
		series = append(series, *byRanks[rk])
	}
	return chart.Render(chart.Options{
		Title:  caption,
		LogX:   true,
		LogY:   true,
		XLabel: "OpenMP threads",
		YLabel: "walltime (s)",
	}, series...)
}
