package experiments

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"

	"repro/internal/fault"
)

// popColumn returns the index of name in header, or -1.
func popColumn(header []string, name string) int {
	for i, h := range header {
		if h == name {
			return i
		}
	}
	return -1
}

// TestConvSweepCarriesPopColumns: with Diagnose on, every healthy sweep
// point's row must carry the binding section's POP factor block — values
// that parse, live in [0,1] and satisfy parallel = load_balance × comm —
// and the `error` column must stay last.
func TestConvSweepCarriesPopColumns(t *testing.T) {
	o := QuickConvOptions()
	res, err := RunConvolution(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	header := rows[0]
	if header[len(header)-1] != "error" {
		t.Fatalf("last column is %q, want error", header[len(header)-1])
	}
	iPar := popColumn(header, "pop_parallel_eff")
	iLB := popColumn(header, "pop_load_balance")
	iComm := popColumn(header, "pop_comm_eff")
	iDom := popColumn(header, "pop_dominant_factor")
	if iPar < 0 || iLB < 0 || iComm < 0 || iDom < 0 {
		t.Fatalf("pop_* columns missing from header: %v", header)
	}
	if len(rows) < 2 {
		t.Fatal("sweep CSV has no data rows")
	}
	for _, row := range rows[1:] {
		par, err := strconv.ParseFloat(row[iPar], 64)
		if err != nil {
			t.Fatalf("pop_parallel_eff %q does not parse: %v", row[iPar], err)
		}
		lb, err1 := strconv.ParseFloat(row[iLB], 64)
		comm, err2 := strconv.ParseFloat(row[iComm], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("pop factor cells do not parse: %v", row)
		}
		if par < 0 || par > 1 || lb < 0 || lb > 1 || comm < 0 || comm > 1 {
			t.Errorf("pop factors outside [0,1]: parallel %v lb %v comm %v", par, lb, comm)
		}
		if d := par - lb*comm; d > 1e-9 || d < -1e-9 {
			t.Errorf("parallel %v != load_balance %v x comm %v", par, lb, comm)
		}
		if row[iDom] == "" {
			t.Errorf("pop_dominant_factor empty on a healthy point: %v", row)
		}
	}
}

// TestFaultedPointBlanksPopCells: a point whose rep-0 run recorded faults
// keeps its diag_* verdict but blanks the pop_* sub-block — degraded runs
// withhold efficiencies rather than reporting garbage.
func TestFaultedPointBlanksPopCells(t *testing.T) {
	o := QuickConvOptions()
	plan, err := fault.ParseSpec("delay:src=*,dst=*,prob=1,secs=1e-6", 3)
	if err != nil {
		t.Fatal(err)
	}
	o.Fault = plan
	res, err := RunConvolution(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	header := rows[0]
	iSec := popColumn(header, "diag_section")
	iPar := popColumn(header, "pop_parallel_eff")
	iDom := popColumn(header, "pop_dominant_factor")
	var blanked int
	for _, row := range rows[1:] {
		if row[iSec] == "" {
			continue // diagnosis unavailable for this point
		}
		if row[iPar] == "" && row[iDom] == "" {
			blanked++
		}
	}
	if blanked == 0 {
		t.Fatalf("prob=1 delay plan produced no degraded pop_* rows:\n%s", buf.String())
	}
}
