package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/convolution"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/prof"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/verify"
)

// The paper's §2 contrasts strong scaling (Amdahl) with the scaled-speedup
// view (Gustafson–Barsis): "an increasing number of resources is generally
// associated with an increasing problem size... a spectrum of strong and
// weak scaling scenarios". This driver runs the convolution benchmark in
// weak-scaling mode — the image grows with the process count so per-rank
// work is constant — and reports weak efficiency and the Gustafson scaled
// speedup next to the same sections that bound strong scaling.

// WeakOptions configures the weak-scaling sweep.
type WeakOptions struct {
	// Ps are the process counts; at p the image height is BaseHeight·p.
	Ps []int
	// Width and BaseHeight fix the per-process slab (full-cost problem).
	Width, BaseHeight int
	// Steps per run.
	Steps int
	// Scale divides executed dimensions, as in the strong sweep.
	Scale int
	Seed  uint64
	Model *machine.Model
	// Jobs bounds the worker pool (sched.Workers semantics).
	Jobs int
	// Diagnose attaches a trace collector per point and reports the binding
	// section's wait-state diagnosis in the CSV.
	Diagnose bool
	// Verify attaches the runtime section/collective verifier to every run;
	// violations accumulate in WeakResult.Verify (the -verify bench flag).
	Verify bool
	// Fault arms a deterministic fault plan; failed points degrade to an
	// `error` CSV cell instead of aborting the sweep.
	Fault *fault.Plan
	// Deadline arms the per-run deadlock detector (default 30s when Fault is
	// set, off otherwise).
	Deadline time.Duration
}

// QuickWeakOptions is a reduced sweep for tests.
func QuickWeakOptions() WeakOptions {
	return WeakOptions{
		Ps:         []int{1, 2, 4, 8},
		Width:      1024,
		BaseHeight: 128,
		Steps:      30,
		Scale:      8,
		Seed:       2017,
		Model:      machine.NehalemCluster(),
		Diagnose:   true,
	}
}

// PaperWeakOptions scales the paper's image slab out to 456 ranks.
func PaperWeakOptions() WeakOptions {
	return WeakOptions{
		Ps:         []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 456},
		Width:      5616,
		BaseHeight: 64,
		Steps:      200,
		Scale:      8,
		Seed:       2017,
		Model:      machine.NehalemCluster(),
	}
}

// WeakPoint is one measured weak-scaling configuration.
type WeakPoint struct {
	P    int
	Wall float64
	// Efficiency is T(1)/T(p): 1.0 is perfect weak scaling.
	Efficiency float64
	// ScaledSpeedup is the Gustafson view: p·Efficiency.
	ScaledSpeedup float64
	// HaloAvg is the per-process HALO time (constant per-process slab ⇒
	// the communication term weak scaling must keep flat).
	HaloAvg float64
	// Diag is the wait-state diagnosis (nil with Diagnose off).
	Diag *PointDiagnosis
	// VerifyViolations is this point's runtime-verifier report (nil with
	// Verify off).
	VerifyViolations []verify.Violation
	// Err is the run's root cause ("" when healthy); failed points keep zero
	// metrics while the sweep completes.
	Err string
}

// WeakResult is the sweep output.
type WeakResult struct {
	Opts   WeakOptions
	Points []WeakPoint
	// Verify holds every runtime-verifier violation across the sweep's runs,
	// canonically sorted (empty without Opts.Verify, and for a clean sweep).
	Verify []verify.Violation
}

// RunWeakConvolution executes the sweep.
func RunWeakConvolution(o WeakOptions) (*WeakResult, error) {
	if o.Model == nil {
		o.Model = machine.NehalemCluster()
	}
	if len(o.Ps) == 0 || o.Ps[0] != 1 {
		return nil, fmt.Errorf("experiments: weak scaling needs Ps starting at 1")
	}
	res := &WeakResult{Opts: o}
	// Each scale is an independent simulation; only the efficiency columns
	// depend on the p=1 baseline, so they are derived after the parallel
	// sweep, in order.
	points, err := sched.Map(sched.Workers(o.Jobs), len(o.Ps), func(i int) (WeakPoint, error) {
		p := o.Ps[i]
		params := convolution.Params{
			Width:      o.Width,
			Height:     o.BaseHeight * p,
			Steps:      o.Steps,
			Scale:      o.Scale,
			Seed:       o.Seed,
			SkipKernel: true,
		}
		profiler := prof.New()
		cfg := mpi.Config{
			Ranks:   p,
			Model:   o.Model,
			Seed:    o.Seed,
			Tools:   []mpi.Tool{profiler},
			Timeout: 10 * time.Minute,
		}
		applyFault(&cfg, o.Fault, o.Deadline)
		ver := attachVerifier(&cfg, o.Verify)
		var collector *trace.Collector
		if o.Diagnose {
			collector = newDiagCollector()
			cfg.Tools = append(cfg.Tools, collector)
		}
		if _, err := convolution.Run(cfg, params); err != nil {
			// Degraded mode: record the root cause, let the sweep carry on.
			return WeakPoint{P: p, Err: runErrCell(err), VerifyViolations: verifierViolations(ver)}, nil
		}
		profile, err := profiler.Result()
		if err != nil {
			return WeakPoint{}, err
		}
		pt := WeakPoint{P: p, Wall: profile.WallTime}
		if halo := profile.Section(convolution.SecHalo); halo != nil {
			pt.HaloAvg = halo.AvgPerProcess()
		}
		if collector != nil {
			// No strong-scaling baseline exists in a weak sweep, so the
			// diagnosis omits the Eq. 6 bound (seq = 0).
			pt.Diag = diagnoseEvents(collector.Buffer().Events(), 0)
		}
		pt.VerifyViolations = verifierViolations(ver)
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	for i := range points {
		res.Verify = append(res.Verify, points[i].VerifyViolations...)
	}
	verify.SortViolations(res.Verify)
	base := points[0].Wall // Ps[0] == 1, validated above
	for i := range points {
		// Efficiency needs both the baseline and this point to have survived;
		// a failed run leaves the derived columns zero next to its error.
		if points[i].Err != "" || base <= 0 || points[i].Wall <= 0 {
			continue
		}
		points[i].Efficiency = base / points[i].Wall
		points[i].ScaledSpeedup = float64(points[i].P) * points[i].Efficiency
	}
	res.Points = points
	return res, nil
}

// Table renders the weak-scaling sweep with the Gustafson and Amdahl
// reference columns: the measured scaled speedup against what
// Gustafson–Barsis predicts for the serial fraction implied at the largest
// scale, and against Amdahl's strong-scaling bound for the same fraction —
// the spectrum the paper describes.
func (r *WeakResult) Table() (string, error) {
	if len(r.Points) == 0 {
		return "", fmt.Errorf("experiments: empty weak sweep")
	}
	// Implied serial fraction from the last point, via Gustafson's
	// inverse: s = (p·E − S_scaled)/(p − 1)... with S_scaled = p·E this is
	// degenerate, so derive s from efficiency loss instead: the serial
	// (non-weak-scalable) share is 1 − E at large p.
	last := r.Points[len(r.Points)-1]
	s := 1 - last.Efficiency
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	t := newTable("p", "wall(s)", "weak-eff", "scaled-speedup", "Gustafson(s)", "Amdahl(s)", "halo/proc(s)")
	for _, pt := range r.Points {
		g, err := core.GustafsonSpeedup(s, pt.P)
		if err != nil {
			return "", err
		}
		a, err := core.AmdahlBound(s, pt.P)
		if err != nil {
			return "", err
		}
		t.addRow(
			fmt.Sprintf("%d", pt.P),
			fmt.Sprintf("%.5g", pt.Wall),
			fmt.Sprintf("%.3f", pt.Efficiency),
			fmt.Sprintf("%.4g", pt.ScaledSpeedup),
			fmt.Sprintf("%.4g", g),
			fmt.Sprintf("%.4g", a),
			fmt.Sprintf("%.4g", pt.HaloAvg),
		)
	}
	caption := fmt.Sprintf(
		"Weak scaling (per-process slab %d×%d, %d steps); implied serial share s = %.3f\n",
		r.Opts.Width, r.Opts.BaseHeight, r.Opts.Steps, s)
	return caption + t.String(), nil
}

// WriteCSV emits every weak-scaling point plus the wait-state diagnosis
// block (blank when Diagnose was off).
func (r *WeakResult) WriteCSV(w io.Writer) error {
	header := append([]string{"p", "wall", "efficiency", "scaled_speedup", "halo_avg"}, diagHeader()...)
	header = append(header, "error")
	if _, err := io.WriteString(w, csvLine(header...)); err != nil {
		return err
	}
	for _, pt := range r.Points {
		cells := []string{
			fmt.Sprintf("%d", pt.P),
			fmt.Sprintf("%g", pt.Wall),
			fmt.Sprintf("%g", pt.Efficiency),
			fmt.Sprintf("%g", pt.ScaledSpeedup),
			fmt.Sprintf("%g", pt.HaloAvg),
		}
		cells = append(cells, pt.Diag.csvCells()...)
		cells = append(cells, csvEscape(pt.Err))
		if _, err := io.WriteString(w, csvLine(cells...)); err != nil {
			return err
		}
	}
	return nil
}
