// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5): the convolution scaling study (Figs. 5–6) and
// the LULESH MPI+OpenMP study (Table 7, Figs. 8–10). Each driver runs the
// instrumented benchmark under the section profiler on the corresponding
// machine model and renders the same rows/series the paper reports, as
// aligned text and as CSV.
package experiments

import (
	"fmt"
	"strings"
)

// textTable renders rows of cells with aligned columns.
type textTable struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *textTable {
	return &textTable{header: header}
}

func (t *textTable) addRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *textTable) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// csvLine joins cells with commas (cells are known not to contain commas).
func csvLine(cells ...string) string {
	return strings.Join(cells, ",") + "\n"
}
