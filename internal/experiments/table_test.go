package experiments

import (
	"strings"
	"testing"
)

func TestTextTableAlignment(t *testing.T) {
	tb := newTable("col", "longer-column")
	tb.addRow("1", "x")
	tb.addRow("12345", "y")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	w := len(lines[0])
	for i, l := range lines {
		if len(l) != w {
			t.Errorf("line %d width %d != header width %d", i, len(l), w)
		}
	}
	if !strings.Contains(lines[1], "---") {
		t.Error("missing separator")
	}
}

func TestCSVLine(t *testing.T) {
	if got := csvLine("a", "b", "c"); got != "a,b,c\n" {
		t.Errorf("csvLine = %q", got)
	}
}

func TestPaperOptionsAreValid(t *testing.T) {
	c := PaperConvOptions()
	if c.Model == nil || len(c.Ps) == 0 || c.Steps != 1000 {
		t.Errorf("paper conv options wrong: %+v", c)
	}
	// The largest p must fit the executed image height.
	maxP := 0
	for _, p := range c.Ps {
		if p > maxP {
			maxP = p
		}
	}
	if execH := 3744 / c.Scale; execH < maxP {
		t.Errorf("executed height %d < largest p %d", execH, maxP)
	}
	if maxP > c.Model.TotalCores() {
		t.Errorf("sweep exceeds the cluster: %d > %d cores", maxP, c.Model.TotalCores())
	}

	for _, o := range []HybridOptions{PaperBroadwellOptions(), PaperKNLOptions()} {
		if o.Model == nil || len(o.Ranks) == 0 || len(o.Threads) == 0 {
			t.Errorf("hybrid options wrong: %+v", o)
		}
		for _, r := range o.Ranks {
			if _, err := sFor(r); err != nil {
				t.Errorf("rank count %d has no Table 7 size", r)
			}
		}
	}
	if PaperKNLOptions().Model.Name != "knl" {
		t.Error("KNL options not on the KNL model")
	}
	if PaperBroadwellOptions().Model.Name != "dual-broadwell" {
		t.Error("Broadwell options not on the Broadwell model")
	}
}

func TestContains(t *testing.T) {
	if !contains([]int{1, 2, 3}, 2) || contains([]int{1, 3}, 2) || contains(nil, 0) {
		t.Error("contains broken")
	}
}
