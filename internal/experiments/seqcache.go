package experiments

import (
	"sync"

	"repro/internal/convolution"
	"repro/internal/machine"
)

// Every figure's speedups and Eq. 6 partial bounds divide by the same
// sequential baseline Tseq, yet each driver used to re-derive it per
// figure. The baseline is a pure function of the convolution parameters
// and the machine model, so it is computed once per distinct configuration
// and memoized for the life of the process.

// seqKey identifies a baseline: the full parameter set plus the model,
// which the presets identify by name.
type seqKey struct {
	params convolution.Params
	model  string
}

var seqCache struct {
	mu sync.Mutex
	m  map[seqKey]float64
}

// seqBaselineCached returns convolution.Sequential's modeled time for
// (params, model), computing each distinct configuration once. Safe for
// concurrent use; a cold miss may compute twice under contention, which is
// harmless because the result is deterministic.
func seqBaselineCached(params convolution.Params, model *machine.Model) (float64, error) {
	key := seqKey{params: params, model: model.Name}
	seqCache.mu.Lock()
	t, ok := seqCache.m[key]
	seqCache.mu.Unlock()
	if ok {
		return t, nil
	}
	_, t, err := convolution.Sequential(params, model)
	if err != nil {
		return 0, err
	}
	seqCache.mu.Lock()
	if seqCache.m == nil {
		seqCache.m = map[seqKey]float64{}
	}
	seqCache.m[key] = t
	seqCache.mu.Unlock()
	return t, nil
}
