package experiments

import (
	"strings"
	"testing"
)

func TestDecompComparison(t *testing.T) {
	res, err := RunDecompComparison(QuickDecompOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.Bytes2D >= pt.Bytes1D {
			t.Errorf("p=%d: 2-D halo bytes %d not below 1-D %d", pt.P, pt.Bytes2D, pt.Bytes1D)
		}
		if pt.Halo1D <= 0 || pt.Halo2D <= 0 || pt.Wall1D <= 0 || pt.Wall2D <= 0 {
			t.Errorf("p=%d: degenerate point %+v", pt.P, pt)
		}
	}
	// The modeled byte advantage grows with p.
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	r0 := float64(first.Bytes1D) / float64(first.Bytes2D)
	r1 := float64(last.Bytes1D) / float64(last.Bytes2D)
	if r1 <= r0 {
		t.Errorf("2-D advantage did not grow: %g -> %g", r0, r1)
	}
	out := res.Table()
	for _, want := range []string{"Decomposition ablation", "2D grid", "HALO/proc"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestDecompDefaults(t *testing.T) {
	o := QuickDecompOptions()
	o.Model = nil
	o.Ps = []int{4}
	if _, err := RunDecompComparison(o); err != nil {
		t.Fatal(err)
	}
}
