package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lulesh"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/prof"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/verify"
)

// HybridOptions configures the LULESH MPI+OpenMP study of §5.2.
type HybridOptions struct {
	// Model is the machine (KNL or DualBroadwell in the paper).
	Model *machine.Model
	// Ranks are the MPI process counts to sweep (cubes; the per-rank size
	// follows Table 7 to keep 110592 total elements).
	Ranks []int
	// Threads are the OpenMP team sizes to sweep.
	Threads []int
	// Steps per run.
	Steps int
	// MaxScale caps the execution-scale divisor (the driver picks the
	// largest divisor of s not exceeding it with an executed edge >= 2).
	MaxScale int
	// Seed for the machine's stochastic components.
	Seed uint64
	// Jobs bounds the worker pool (sched.Workers semantics).
	Jobs int
	// Diagnose attaches a trace collector per grid cell and reports the
	// binding section's wait-state diagnosis in the CSV.
	Diagnose bool
	// Profile attaches the constant-memory streaming telemetry tool per
	// cell; summaries land in HybridPoint.Profile.
	Profile bool
	// Verify attaches the runtime section/collective verifier to every cell;
	// violations accumulate in HybridResult.Verify (the -verify bench flag).
	Verify bool
	// Fault arms a deterministic fault plan; failed cells degrade to an
	// `error` CSV cell instead of aborting the sweep.
	Fault *fault.Plan
	// Deadline arms the per-run deadlock detector (default 30s when Fault is
	// set, off otherwise).
	Deadline time.Duration
}

// PaperBroadwellOptions reproduces Fig. 8's sweep.
func PaperBroadwellOptions() HybridOptions {
	return HybridOptions{
		Model:    machine.DualBroadwell(),
		Ranks:    []int{1, 8, 27},
		Threads:  []int{1, 2, 4, 8, 16, 32, 64},
		Steps:    10,
		MaxScale: 4,
		Seed:     2017,
		Diagnose: true,
	}
}

// PaperKNLOptions reproduces Fig. 9's sweep (and supplies Fig. 10's p=1
// series).
func PaperKNLOptions() HybridOptions {
	return HybridOptions{
		Model:    machine.KNL(),
		Ranks:    []int{1, 8, 27},
		Threads:  []int{1, 2, 4, 8, 16, 24, 32, 48, 64, 128, 256},
		Steps:    10,
		MaxScale: 4,
		Seed:     2017,
		Diagnose: true,
	}
}

// QuickHybridOptions is a reduced sweep for tests.
func QuickHybridOptions() HybridOptions {
	return HybridOptions{
		Model:    machine.KNL(),
		Ranks:    []int{1, 8},
		Threads:  []int{1, 4, 24, 128},
		Steps:    3,
		MaxScale: 8,
		Seed:     2017,
		Diagnose: true,
	}
}

// sFor returns the Table 7 per-rank size keeping 110592 elements total.
func sFor(ranks int) (int, error) {
	for _, cfg := range lulesh.Table7() {
		if cfg.Ranks == ranks {
			return cfg.S, nil
		}
	}
	return 0, fmt.Errorf("experiments: no Table 7 size for %d ranks", ranks)
}

// chooseScale picks the largest divisor of s that is <= maxScale and keeps
// the executed edge at least 2.
func chooseScale(s, maxScale int) int {
	best := 1
	for d := 1; d <= maxScale; d++ {
		if s%d == 0 && s/d >= 2 {
			best = d
		}
	}
	return best
}

// HybridPoint is one (ranks, threads) configuration.
type HybridPoint struct {
	Ranks, Threads int
	Wall           float64
	// NodalAvg/ElementsAvg are average per-process inclusive times of the
	// two dominant Lagrange sections (the curves of Figs. 8–9).
	NodalAvg, ElementsAvg float64
	// Totals holds the summed-over-ranks time of every section.
	Totals map[string]float64
	// Diag is the wait-state diagnosis (nil with Diagnose off).
	Diag *PointDiagnosis
	// Profile is the streaming telemetry summary (nil with Profile off, and
	// for failed cells).
	Profile *telemetry.Profile
	// VerifyViolations is this cell's runtime-verifier report (nil with
	// Verify off).
	VerifyViolations []verify.Violation
	// Err is the run's root cause ("" when healthy); failed cells keep zero
	// metrics while the sweep completes.
	Err string
}

// HybridResult is the full study on one machine.
type HybridResult struct {
	Opts   HybridOptions
	Points []HybridPoint
	// Verify holds every runtime-verifier violation across the sweep's cells,
	// canonically sorted (empty without Opts.Verify, and for a clean sweep).
	Verify []verify.Violation
}

// RunHybrid executes the sweep.
func RunHybrid(o HybridOptions) (*HybridResult, error) {
	if o.Model == nil {
		o.Model = machine.KNL()
	}
	res := &HybridResult{Opts: o}
	// Resolve the per-rank sizes first (cheap, and validation errors should
	// not depend on scheduling), then fan the (ranks, threads) grid out on
	// the worker pool: each cell is an independent simulation.
	type gridCell struct{ ranks, threads, s, scale int }
	cells := make([]gridCell, 0, len(o.Ranks)*len(o.Threads))
	for _, ranks := range o.Ranks {
		s, err := sFor(ranks)
		if err != nil {
			return nil, err
		}
		scale := chooseScale(s, o.MaxScale)
		for _, threads := range o.Threads {
			cells = append(cells, gridCell{ranks, threads, s, scale})
		}
	}
	points, err := sched.Map(sched.Workers(o.Jobs), len(cells), func(i int) (HybridPoint, error) {
		cell := cells[i]
		params := lulesh.Params{
			S: cell.s, Steps: o.Steps, Threads: cell.threads, Scale: cell.scale, SedovEnergy: 1e4,
		}
		profiler := prof.New()
		cfg := mpi.Config{
			Ranks:          cell.ranks,
			ThreadsPerRank: cell.threads,
			Model:          o.Model,
			Seed:           o.Seed,
			Tools:          []mpi.Tool{profiler},
			Timeout:        10 * time.Minute,
		}
		applyFault(&cfg, o.Fault, o.Deadline)
		ver := attachVerifier(&cfg, o.Verify)
		var collector *trace.Collector
		if o.Diagnose {
			collector = newDiagCollector()
			cfg.Tools = append(cfg.Tools, collector)
		}
		var tele *telemetry.Tool
		if o.Profile {
			tele = telemetry.New(telemetry.Options{})
			cfg.Tools = append(cfg.Tools, tele)
		}
		if _, err := lulesh.Run(cfg, params); err != nil {
			// Degraded mode: record the root cause, let the sweep carry on.
			return HybridPoint{
				Ranks: cell.ranks, Threads: cell.threads,
				Totals: map[string]float64{}, Err: runErrCell(err),
				VerifyViolations: verifierViolations(ver),
			}, nil
		}
		profile, err := profiler.Result()
		if err != nil {
			return HybridPoint{}, err
		}
		pt := HybridPoint{
			Ranks: cell.ranks, Threads: cell.threads,
			Wall:   profile.WallTime,
			Totals: map[string]float64{},
		}
		for _, label := range lulesh.Sections() {
			if sec := profile.Section(label); sec != nil {
				pt.Totals[label] = sec.TotalTime()
			}
		}
		if sec := profile.Section(lulesh.SecNodal); sec != nil {
			pt.NodalAvg = sec.AvgPerProcess()
		}
		if sec := profile.Section(lulesh.SecElements); sec != nil {
			pt.ElementsAvg = sec.AvgPerProcess()
		}
		if collector != nil {
			pt.Diag = diagnoseEvents(collector.Buffer().Events(), 0)
		}
		if tele != nil {
			pt.Profile = tele.Snapshot()
		}
		pt.VerifyViolations = verifierViolations(ver)
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	res.Points = points
	sort.Slice(res.Points, func(i, j int) bool {
		if res.Points[i].Ranks != res.Points[j].Ranks {
			return res.Points[i].Ranks < res.Points[j].Ranks
		}
		return res.Points[i].Threads < res.Points[j].Threads
	})
	// Collect verifier findings in sorted cell order, then impose the
	// canonical sort — identical bytes for every Jobs value.
	for i := range res.Points {
		res.Verify = append(res.Verify, res.Points[i].VerifyViolations...)
	}
	verify.SortViolations(res.Verify)
	return res, nil
}

// LargestProfile returns the telemetry summary of the largest completed
// cell — points are sorted by (ranks, threads), so this is the deepest
// configuration that produced one (nil with Opts.Profile off).
func (r *HybridResult) LargestProfile() *telemetry.Profile {
	for i := len(r.Points) - 1; i >= 0; i-- {
		if r.Points[i].Profile != nil {
			return r.Points[i].Profile
		}
	}
	return nil
}

// Point returns the measured point for (ranks, threads), or nil.
func (r *HybridResult) Point(ranks, threads int) *HybridPoint {
	for i := range r.Points {
		if r.Points[i].Ranks == ranks && r.Points[i].Threads == threads {
			return &r.Points[i]
		}
	}
	return nil
}

// Fig7 renders the strong-scaling configuration table (the paper's Fig. 7).
func Fig7() string {
	t := newTable("#MPI Processes", "Lulesh size (-s)", "Number of elements")
	for _, cfg := range lulesh.Table7() {
		t.addRow(fmt.Sprintf("%d", cfg.Ranks), fmt.Sprintf("%d", cfg.S),
			fmt.Sprintf("%d", cfg.Ranks*cfg.S*cfg.S*cfg.S))
	}
	return "Fig 7 — strong-scaling configurations used for Lulesh\n" + t.String()
}

// ScalingTable renders the Figs. 8/9 series: per (p, threads), the average
// per-process time of LagrangeNodal, LagrangeElements and the walltime.
func (r *HybridResult) ScalingTable(caption string) string {
	t := newTable("p", "threads", "LagrangeNodal", "LagrangeElements", "walltime")
	for _, pt := range r.Points {
		t.addRow(
			fmt.Sprintf("%d", pt.Ranks),
			fmt.Sprintf("%d", pt.Threads),
			fmt.Sprintf("%.4g", pt.NodalAvg),
			fmt.Sprintf("%.4g", pt.ElementsAvg),
			fmt.Sprintf("%.4g", pt.Wall),
		)
	}
	return caption + "\n" + t.String()
}

// Fig10Analysis is the single-process KNL analysis of the paper's Fig. 10:
// OpenMP scaling measured purely from MPI sections, the inflexion point,
// and the partial speedup bounds it implies.
type Fig10Analysis struct {
	Threads  []int
	Wall     []float64
	Nodal    []float64
	Elements []float64
	Speedup  []float64
	// InflexionThreads is the team size minimizing the walltime.
	InflexionThreads int
	// SpeedupAtInflexion is the measured speedup there.
	SpeedupAtInflexion float64
	// LagrangeBound is Ts / (T_nodal + T_elements) at the inflexion —
	// the paper's 8.16× computation.
	LagrangeBound float64
	// ElementsBound is Ts / T_elements at the inflexion — the paper's
	// 13.72× computation.
	ElementsBound float64
}

// AnalyzeFig10 extracts the p=1 series and computes the §5.2 bounds.
func (r *HybridResult) AnalyzeFig10() (*Fig10Analysis, error) {
	a := &Fig10Analysis{}
	for _, pt := range r.Points {
		if pt.Ranks != 1 || pt.Err != "" {
			continue
		}
		a.Threads = append(a.Threads, pt.Threads)
		a.Wall = append(a.Wall, pt.Wall)
		a.Nodal = append(a.Nodal, pt.NodalAvg)
		a.Elements = append(a.Elements, pt.ElementsAvg)
	}
	if len(a.Threads) == 0 {
		return nil, fmt.Errorf("experiments: no single-process points measured")
	}
	if a.Threads[0] != 1 {
		return nil, fmt.Errorf("experiments: Fig 10 needs the threads=1 baseline")
	}
	seq := a.Wall[0]
	for _, w := range a.Wall {
		s, err := core.Speedup(seq, w)
		if err != nil {
			return nil, err
		}
		a.Speedup = append(a.Speedup, s)
	}
	idx := core.InflexionIndex(a.Wall)
	a.InflexionThreads = a.Threads[idx]
	a.SpeedupAtInflexion = a.Speedup[idx]
	var err error
	if a.LagrangeBound, err = core.PartialBound(seq, a.Nodal[idx]+a.Elements[idx]); err != nil {
		return nil, err
	}
	if a.ElementsBound, err = core.PartialBound(seq, a.Elements[idx]); err != nil {
		return nil, err
	}
	return a, nil
}

// Render prints the Fig. 10 series and the bound analysis.
func (a *Fig10Analysis) Render() string {
	t := newTable("threads", "walltime", "LagrangeNodal", "LagrangeElements", "speedup")
	for i, th := range a.Threads {
		t.addRow(fmt.Sprintf("%d", th), fmt.Sprintf("%.4g", a.Wall[i]),
			fmt.Sprintf("%.4g", a.Nodal[i]), fmt.Sprintf("%.4g", a.Elements[i]),
			fmt.Sprintf("%.4g", a.Speedup[i]))
	}
	return fmt.Sprintf(
		"Fig 10 — Lulesh walltime and speedup for pure OpenMP scalability (p=1)\n%s"+
			"inflexion point: %d threads; measured speedup there: %.3g×\n"+
			"partial bound from the two Lagrange sections: %.3g×\n"+
			"partial bound from LagrangeElements alone:     %.3g×\n",
		t.String(), a.InflexionThreads, a.SpeedupAtInflexion,
		a.LagrangeBound, a.ElementsBound)
}

// WriteCSV emits every hybrid point plus the wait-state diagnosis block
// (blank when Diagnose was off).
func (r *HybridResult) WriteCSV(w io.Writer) error {
	header := append([]string{"ranks", "threads", "wall", "nodal_avg", "elements_avg"}, diagHeader()...)
	header = append(header, "error")
	if _, err := io.WriteString(w, csvLine(header...)); err != nil {
		return err
	}
	for _, pt := range r.Points {
		cells := []string{
			fmt.Sprintf("%d", pt.Ranks),
			fmt.Sprintf("%d", pt.Threads),
			fmt.Sprintf("%g", pt.Wall),
			fmt.Sprintf("%g", pt.NodalAvg),
			fmt.Sprintf("%g", pt.ElementsAvg),
		}
		cells = append(cells, pt.Diag.csvCells()...)
		cells = append(cells, csvEscape(pt.Err))
		if _, err := io.WriteString(w, csvLine(cells...)); err != nil {
			return err
		}
	}
	return nil
}
