package experiments

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/convolution"
	"repro/internal/machine"
	"repro/internal/mpi"
)

// vmHWM reads the process peak-RSS high-water mark in bytes, or 0 when
// /proc is unavailable (non-Linux platforms).
func vmHWM(t *testing.T) uint64 {
	t.Helper()
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// TestExtremeSmokeRSSBudget is the bufpool/shard memory regression gate: a
// 10,000-rank 2-D ghost run must complete quickly and keep the process peak
// RSS under a fixed budget. Before the sharded runtime, rank state, mailbox
// and fault bookkeeping were all pre-allocated O(ranks) (and link-fault
// sequencing O(ranks²)); a regression that reintroduces eager per-rank
// allocation or unbounded payload-pool growth trips this budget long before
// it becomes a production problem.
func TestExtremeSmokeRSSBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-rank smoke is not a -short test")
	}
	if raceEnabled {
		t.Skip("race shadow memory dominates RSS")
	}
	const ranks = 10000
	cfg := mpi.Config{
		Ranks:   ranks,
		Model:   machine.ExtremeCluster(),
		Seed:    2017,
		Lazy:    true,
		Timeout: 5 * time.Minute,
	}
	params := convolution.Params{
		Width: 5616, Height: 3744,
		Steps: 2, Scale: 16, Seed: 2017, SkipKernel: true,
	}
	start := time.Now()
	res, err := convolution.Run2D(cfg, params)
	if err != nil {
		t.Fatalf("10k-rank Run2D: %v", err)
	}
	wall := time.Since(start)
	if res.Report.MaterializedRanks != ranks {
		t.Errorf("MaterializedRanks = %d, want %d (every rank communicates)",
			res.Report.MaterializedRanks, ranks)
	}
	t.Logf("10k-rank smoke: wall %v, virtual %.3fs", wall, res.Report.WallTime)

	hwm := vmHWM(t)
	if hwm == 0 {
		t.Skip("no /proc/self/status; RSS budget not checkable")
	}
	// Budget: ~4x the measured high-water mark of the sharded runtime at the
	// time this gate was added (~67 MiB) — generous enough for GC timing and
	// test ordering, tight enough to catch a return to eager O(ranks) or
	// O(ranks²) allocation (10k ranks' link-fault sequencing alone was
	// 800 MB when pre-allocated).
	const budget = 256 << 20 // 256 MiB
	t.Logf("peak RSS %.1f MiB (budget %d MiB)", float64(hwm)/(1<<20), budget>>20)
	if hwm > budget {
		t.Errorf("peak RSS %d bytes exceeds the %d-byte extreme-smoke budget", hwm, budget)
	}
}
