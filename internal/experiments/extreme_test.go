package experiments

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/convolution"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// vmHWM reads the process peak-RSS high-water mark in bytes, or 0 when
// /proc is unavailable (non-Linux platforms).
func vmHWM(t *testing.T) uint64 {
	t.Helper()
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// TestExtremeSmokeRSSBudget is the bufpool/shard memory regression gate: a
// 10,000-rank 2-D ghost run must complete quickly and keep the process peak
// RSS under a fixed budget. Before the sharded runtime, rank state, mailbox
// and fault bookkeeping were all pre-allocated O(ranks) (and link-fault
// sequencing O(ranks²)); a regression that reintroduces eager per-rank
// allocation or unbounded payload-pool growth trips this budget long before
// it becomes a production problem.
func TestExtremeSmokeRSSBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-rank smoke is not a -short test")
	}
	if raceEnabled {
		t.Skip("race shadow memory dominates RSS")
	}
	const ranks = 10000
	cfg := mpi.Config{
		Ranks:   ranks,
		Model:   machine.ExtremeCluster(),
		Seed:    2017,
		Lazy:    true,
		Timeout: 5 * time.Minute,
	}
	params := convolution.Params{
		Width: 5616, Height: 3744,
		Steps: 2, Scale: 16, Seed: 2017, SkipKernel: true,
	}
	start := time.Now()
	res, err := convolution.Run2D(cfg, params)
	if err != nil {
		t.Fatalf("10k-rank Run2D: %v", err)
	}
	wall := time.Since(start)
	if res.Report.MaterializedRanks != ranks {
		t.Errorf("MaterializedRanks = %d, want %d (every rank communicates)",
			res.Report.MaterializedRanks, ranks)
	}
	t.Logf("10k-rank smoke: wall %v, virtual %.3fs", wall, res.Report.WallTime)

	hwm := vmHWM(t)
	if hwm == 0 {
		t.Skip("no /proc/self/status; RSS budget not checkable")
	}
	// Budget: ~4x the measured high-water mark of the sharded runtime at the
	// time this gate was added (~67 MiB) — generous enough for GC timing and
	// test ordering, tight enough to catch a return to eager O(ranks) or
	// O(ranks²) allocation (10k ranks' link-fault sequencing alone was
	// 800 MB when pre-allocated).
	const budget = 256 << 20 // 256 MiB
	t.Logf("peak RSS %.1f MiB (budget %d MiB)", float64(hwm)/(1<<20), budget>>20)
	if hwm > budget {
		t.Errorf("peak RSS %d bytes exceeds the %d-byte extreme-smoke budget", hwm, budget)
	}
}

// TestExtremeTelemetryRSSBudget re-runs the 10k-rank smoke with the
// streaming telemetry tool attached and holds it to the same RSS budget.
// Telemetry's whole claim is constant memory: fixed section table, bounded
// histograms/heatmap/reservoirs and per-shard slabs that piggyback on the
// runtime's 256-rank sharding. If observability ever grows O(ranks × events)
// state — the thing a trace file is — this gate trips at the same 256 MiB
// the bare runtime is held to.
func TestExtremeTelemetryRSSBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-rank smoke is not a -short test")
	}
	if raceEnabled {
		t.Skip("race shadow memory dominates RSS")
	}
	const ranks = 10000
	tl := telemetry.New(telemetry.Options{})
	cfg := mpi.Config{
		Ranks:   ranks,
		Model:   machine.ExtremeCluster(),
		Seed:    2017,
		Lazy:    true,
		Tools:   []mpi.Tool{tl},
		Timeout: 5 * time.Minute,
	}
	params := convolution.Params{
		Width: 5616, Height: 3744,
		Steps: 2, Scale: 16, Seed: 2017, SkipKernel: true,
	}
	start := time.Now()
	res, err := convolution.Run2D(cfg, params)
	if err != nil {
		t.Fatalf("10k-rank Run2D with telemetry: %v", err)
	}
	wall := time.Since(start)

	p := tl.Snapshot()
	if p.Ranks != ranks || p.MaterializedRanks != ranks {
		t.Errorf("profile ranks = %d/%d materialized, want %d/%d",
			p.Ranks, p.MaterializedRanks, ranks, ranks)
	}
	if !p.Finished {
		t.Error("profile not marked finished after Run2D returned")
	}
	if len(p.Sections) == 0 || p.Messages == 0 {
		t.Fatalf("degenerate profile: %d sections, %d messages",
			len(p.Sections), p.Messages)
	}
	if p.Heatmap == nil {
		t.Error("profile has no heatmap despite recorded traffic")
	} else if len(p.Heatmap.Rows) > 256 {
		t.Errorf("heatmap has %d rank rows, want <= 256 (bounded fold)", len(p.Heatmap.Rows))
	}
	t.Logf("10k-rank telemetry smoke: wall %v, virtual %.3fs, %d sections, %d messages",
		wall, res.Report.WallTime, len(p.Sections), p.Messages)

	hwm := vmHWM(t)
	if hwm == 0 {
		t.Skip("no /proc/self/status; RSS budget not checkable")
	}
	const budget = 256 << 20 // same budget as the bare-runtime gate
	t.Logf("peak RSS %.1f MiB (budget %d MiB)", float64(hwm)/(1<<20), budget>>20)
	if hwm > budget {
		t.Errorf("peak RSS %d bytes with telemetry exceeds the %d-byte budget", hwm, budget)
	}
}
