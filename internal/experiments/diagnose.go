package experiments

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/waitstate"
)

// The sweep drivers answer WHICH section binds the speedup (Eq. 6); the
// wait-state engine answers WHY. With Diagnose enabled each sweep point
// attaches a trace collector to one representative run (the rep-0 seed),
// replays the event stream through internal/waitstate and reports the
// binding section's diagnosis next to the measured numbers — so the CSVs
// carry {diag_section, diag_cause, diag_wait_in, diag_wait_out,
// diag_crit_share} per point.

// diagEventLimit caps the per-run trace buffer. A paper-scale convolution
// sweep point records a few million events; past the cap the collector
// counts drops and the analysis degrades to a partial (still deterministic)
// diagnosis rather than exhausting memory.
const diagEventLimit = 4 << 20

// PointDiagnosis summarizes the binding section's wait-state analysis for
// one sweep point.
type PointDiagnosis struct {
	// Section is the binding section (largest avg per-process time) and
	// Cause its dominant wait-state classification.
	Section string
	Cause   string
	// WaitIn / WaitOut are the binding section's blocked receive time and
	// the late-sender wait it caused elsewhere, summed over ranks.
	WaitIn  float64
	WaitOut float64
	// CritShare is the section's share of the critical path.
	CritShare float64
}

// newDiagCollector returns a trace collector recording everything the
// wait-state engine consumes: sections, matched messages and collective
// participation spans.
func newDiagCollector() *trace.Collector {
	c := trace.NewCollector(diagEventLimit)
	c.Messages = true
	c.Collectives = true
	return c
}

// diagnoseEvents runs the wait-state engine over one recorded run and
// extracts the binding section's record. It returns nil when the trace is
// empty or carries no named sections — sweeps degrade to blank diagnosis
// columns instead of failing.
func diagnoseEvents(events []trace.Event, seq float64) *PointDiagnosis {
	if len(events) == 0 {
		return nil
	}
	a, err := waitstate.Analyze(events, waitstate.Options{SeqTime: seq})
	if err != nil {
		return nil
	}
	b := a.Binding()
	if b == nil {
		return nil
	}
	return &PointDiagnosis{
		Section:   b.Section,
		Cause:     b.DominantCause,
		WaitIn:    b.WaitIn,
		WaitOut:   b.WaitOut,
		CritShare: b.CritShare,
	}
}

// diagHeader is the diagnosis column block shared by every sweep CSV.
func diagHeader() []string {
	return []string{"diag_section", "diag_cause", "diag_wait_in", "diag_wait_out", "diag_crit_share"}
}

// csvCells renders the diagnosis columns; a nil receiver (diagnosis off or
// unavailable) yields empty cells so the column layout stays fixed.
func (d *PointDiagnosis) csvCells() []string {
	if d == nil {
		return []string{"", "", "", "", ""}
	}
	return []string{
		d.Section,
		d.Cause,
		fmt.Sprintf("%g", d.WaitIn),
		fmt.Sprintf("%g", d.WaitOut),
		fmt.Sprintf("%g", d.CritShare),
	}
}
