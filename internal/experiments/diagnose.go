package experiments

import (
	"fmt"

	"repro/internal/pop"
	"repro/internal/trace"
	"repro/internal/waitstate"
)

// The sweep drivers answer WHICH section binds the speedup (Eq. 6); the
// wait-state engine answers WHY. With Diagnose enabled each sweep point
// attaches a trace collector to one representative run (the rep-0 seed),
// replays the event stream through internal/waitstate and reports the
// binding section's diagnosis next to the measured numbers — so the CSVs
// carry {diag_section, diag_cause, diag_wait_in, diag_wait_out,
// diag_crit_share} per point, plus the pop_* block: the binding section's
// POP efficiency factors (internal/pop) naming the root cause of the
// bound. Faulted points leave the pop_* cells blank (degraded runs
// withhold efficiencies).

// diagEventLimit caps the per-run trace buffer. A paper-scale convolution
// sweep point records a few million events; past the cap the collector
// counts drops and the analysis degrades to a partial (still deterministic)
// diagnosis rather than exhausting memory.
const diagEventLimit = 4 << 20

// PointDiagnosis summarizes the binding section's wait-state analysis for
// one sweep point.
type PointDiagnosis struct {
	// Section is the binding section (largest avg per-process time) and
	// Cause its dominant wait-state classification.
	Section string
	Cause   string
	// WaitIn / WaitOut are the binding section's blocked receive time and
	// the late-sender wait it caused elsewhere, summed over ranks.
	WaitIn  float64
	WaitOut float64
	// CritShare is the section's share of the critical path.
	CritShare float64
	// Eff is the binding section's POP efficiency record; its Factors are
	// nil on a degraded (faulted) run, which renders as blank pop_* cells.
	Eff *pop.SectionEfficiency
}

// newDiagCollector returns a trace collector recording everything the
// wait-state engine consumes: sections, matched messages and collective
// participation spans.
func newDiagCollector() *trace.Collector {
	c := trace.NewCollector(diagEventLimit)
	c.Messages = true
	c.Collectives = true
	// Thread-team compute regions feed the POP hybrid split; pure-MPI
	// sweeps record none, so the flag costs them nothing.
	c.Omp = true
	return c
}

// diagnoseEvents runs the wait-state engine over one recorded run and
// extracts the binding section's record. It returns nil when the trace is
// empty or carries no named sections — sweeps degrade to blank diagnosis
// columns instead of failing.
func diagnoseEvents(events []trace.Event, seq float64) *PointDiagnosis {
	if len(events) == 0 {
		return nil
	}
	a, err := waitstate.Analyze(events, waitstate.Options{SeqTime: seq})
	if err != nil {
		return nil
	}
	b := a.Binding()
	if b == nil {
		return nil
	}
	d := &PointDiagnosis{
		Section:   b.Section,
		Cause:     b.DominantCause,
		WaitIn:    b.WaitIn,
		WaitOut:   b.WaitOut,
		CritShare: b.CritShare,
	}
	tree := pop.FromAnalysis(a, pop.Options{})
	d.Eff = tree.Section(b.Section)
	return d
}

// diagHeader is the diagnosis column block shared by every sweep CSV: the
// wait-state verdict plus the binding section's POP efficiency factors.
// The trailing `error` column every sweep appends stays last.
func diagHeader() []string {
	return []string{
		"diag_section", "diag_cause", "diag_wait_in", "diag_wait_out", "diag_crit_share",
		"pop_parallel_eff", "pop_load_balance", "pop_comm_eff", "pop_transfer_eff",
		"pop_serialisation_eff", "pop_thread_eff", "pop_omp_region_eff",
		"pop_serial_region_eff", "pop_dominant_factor",
	}
}

// popCellCount is the width of the pop_* sub-block in diagHeader.
const popCellCount = 9

// csvCells renders the diagnosis columns; a nil receiver (diagnosis off or
// unavailable) yields empty cells so the column layout stays fixed, and a
// degraded point (nil Factors) blanks only the pop_* sub-block.
func (d *PointDiagnosis) csvCells() []string {
	cells := make([]string, 0, len(diagHeader()))
	if d == nil {
		return append(cells, make([]string, len(diagHeader()))...)
	}
	cells = append(cells,
		d.Section,
		d.Cause,
		fmt.Sprintf("%g", d.WaitIn),
		fmt.Sprintf("%g", d.WaitOut),
		fmt.Sprintf("%g", d.CritShare),
	)
	if d.Eff == nil || d.Eff.Factors == nil {
		return append(cells, make([]string, popCellCount)...)
	}
	f := d.Eff.Factors
	return append(cells,
		fmt.Sprintf("%g", f.Parallel),
		fmt.Sprintf("%g", f.LoadBalance),
		fmt.Sprintf("%g", f.Comm),
		fmt.Sprintf("%g", f.Transfer),
		fmt.Sprintf("%g", f.Serialisation),
		fmt.Sprintf("%g", f.Thread),
		fmt.Sprintf("%g", f.OmpRegion),
		fmt.Sprintf("%g", f.SerialRegion),
		d.Eff.Dominant,
	)
}
