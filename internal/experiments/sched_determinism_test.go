package experiments

import (
	"bytes"
	"testing"
)

// The scheduler port's correctness bar: a sweep's output is a pure
// function of its options — the worker count must not leak into results.
// Each sweep point runs in its own virtual-time world with its own seeded
// RNGs, and the drivers fold points back in option order, so the CSV
// emitted at Jobs=1 and Jobs=8 must be byte-identical.

// convCSV runs the quick Fig. 5 sweep with the given worker count and
// returns the raw CSV bytes.
func convCSV(t *testing.T, jobs int) []byte {
	t.Helper()
	o := QuickConvOptions()
	o.Jobs = jobs
	res, err := RunConvolution(o)
	if err != nil {
		t.Fatalf("RunConvolution(jobs=%d): %v", jobs, err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV(jobs=%d): %v", jobs, err)
	}
	return buf.Bytes()
}

func TestConvolutionSweepDeterministicAcrossWorkers(t *testing.T) {
	seq := convCSV(t, 1)
	par := convCSV(t, 8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("Fig 5 sweep CSV differs between -j 1 and -j 8:\n-j 1:\n%s\n-j 8:\n%s", seq, par)
	}
}

// hybridCSV runs the quick Fig. 9 sweep with the given worker count.
func hybridCSV(t *testing.T, jobs int) []byte {
	t.Helper()
	o := QuickHybridOptions()
	o.Jobs = jobs
	res, err := RunHybrid(o)
	if err != nil {
		t.Fatalf("RunHybrid(jobs=%d): %v", jobs, err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV(jobs=%d): %v", jobs, err)
	}
	return buf.Bytes()
}

func TestHybridSweepDeterministicAcrossWorkers(t *testing.T) {
	seq := hybridCSV(t, 1)
	par := hybridCSV(t, 8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("Fig 9 sweep CSV differs between -j 1 and -j 8:\n-j 1:\n%s\n-j 8:\n%s", seq, par)
	}
}

// The weak-scaling and decomposition drivers went through the same port;
// cover them with the same invariant so a future driver change cannot
// silently reintroduce order dependence.
func TestWeakAndDecompDeterministicAcrossWorkers(t *testing.T) {
	weakCSV := func(jobs int) []byte {
		o := QuickWeakOptions()
		o.Jobs = jobs
		res, err := RunWeakConvolution(o)
		if err != nil {
			t.Fatalf("RunWeakConvolution(jobs=%d): %v", jobs, err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV(jobs=%d): %v", jobs, err)
		}
		return buf.Bytes()
	}
	if w1, w8 := weakCSV(1), weakCSV(8); !bytes.Equal(w1, w8) {
		t.Errorf("weak sweep CSV differs between -j 1 and -j 8:\n-j 1:\n%s\n-j 8:\n%s", w1, w8)
	}

	decompCSV := func(jobs int) []byte {
		o := QuickDecompOptions()
		o.Jobs = jobs
		res, err := RunDecompComparison(o)
		if err != nil {
			t.Fatalf("RunDecompComparison(jobs=%d): %v", jobs, err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV(jobs=%d): %v", jobs, err)
		}
		return buf.Bytes()
	}
	if d1, d8 := decompCSV(1), decompCSV(8); !bytes.Equal(d1, d8) {
		t.Errorf("decomp CSV differs between -j 1 and -j 8:\n-j 1:\n%s\n-j 8:\n%s", d1, d8)
	}
}
