package experiments

import (
	"strings"
	"testing"
)

func TestConvPlots(t *testing.T) {
	res := runQuickConv(t)
	sp, err := res.PlotSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 5(d)", "measured speedup", "HALO bound", "(log x y)"} {
		if !strings.Contains(sp, want) {
			t.Errorf("speedup plot missing %q:\n%s", want, sp)
		}
	}
	sec, err := res.PlotSections()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 5(c)", "CONVOLVE", "HALO"} {
		if !strings.Contains(sec, want) {
			t.Errorf("sections plot missing %q:\n%s", want, sec)
		}
	}
}

func TestFitReport(t *testing.T) {
	res := runQuickConv(t)
	out := res.FitReport()
	for _, want := range []string{"model fits", "CONVOLVE", "HALO", "RMSE"} {
		if !strings.Contains(out, want) {
			t.Errorf("fit report missing %q:\n%s", want, out)
		}
	}
	// CONVOLVE scales near-perfectly in the quick sweep: its fitted law is
	// usually monotone or has a large p*; HALO's overhead term must be
	// positive (it grows with p).
	_, _, ok, err := res.Study.PredictStudyInflexion("HALO")
	if err != nil {
		t.Fatal(err)
	}
	_ = ok // presence is machine-dependent at quick scales; the render is the contract
}

func TestHybridPlots(t *testing.T) {
	res, err := RunHybrid(QuickHybridOptions())
	if err != nil {
		t.Fatal(err)
	}
	wt, err := res.PlotWalltimes("Fig 9 — KNL walltimes")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 9", "p=1", "p=8"} {
		if !strings.Contains(wt, want) {
			t.Errorf("walltime plot missing %q:\n%s", want, wt)
		}
	}
	a, err := res.AnalyzeFig10()
	if err != nil {
		t.Fatal(err)
	}
	f10, err := a.Plot()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"LagrangeNodal", "speedup vs OpenMP threads"} {
		if !strings.Contains(f10, want) {
			t.Errorf("Fig10 plot missing %q:\n%s", want, f10)
		}
	}
}
