package experiments

import (
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/mpi"
)

// Degraded-mode sweeps: every sweep driver accepts a fault plan and a
// deadlock deadline. A point whose run fails — an injected fail-stop, a
// deadlock report, an application error — no longer aborts the sweep: the
// point's metrics stay zero, its `error` CSV column carries the
// deterministic root cause (mpi.RootCause), and the remaining points
// complete normally. Healthy sweeps emit an empty error column, so the
// schema is fixed either way.

// defaultFaultDeadline arms the deadlock detector whenever a fault plan is
// attached and the caller did not choose a deadline: injected failures can
// legitimately strand peers (a killed rank's partner blocks forever), and a
// degraded sweep must terminate with a report instead of hanging until the
// 10-minute watchdog.
const defaultFaultDeadline = 30 * time.Second

// applyFault wires a sweep's fault plan and deadline into one run config.
func applyFault(cfg *mpi.Config, plan *fault.Plan, deadline time.Duration) {
	cfg.Fault = plan
	cfg.Deadline = deadline
	if plan != nil && deadline == 0 {
		cfg.Deadline = defaultFaultDeadline
	}
}

// runErrCell renders a failed run for the `error` CSV column: the root
// cause only, which is deterministic across worker counts, where the full
// joined error tree is not (casualty join order depends on scheduling).
func runErrCell(err error) string {
	if err == nil {
		return ""
	}
	return mpi.RootCause(err).Error()
}

// csvEscape quotes a cell per RFC 4180 when it contains a comma, quote or
// newline — error messages from degraded runs carry arbitrary text, unlike
// the numeric cells csvLine was written for.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
