//go:build race

package experiments

// raceEnabled reports whether the race detector instruments this build; its
// shadow memory makes peak-RSS assertions meaningless.
const raceEnabled = true
