package experiments

import (
	"strings"
	"testing"
)

func TestWeakScalingSweep(t *testing.T) {
	res, err := RunWeakConvolution(QuickWeakOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[0].Efficiency != 1 {
		t.Errorf("baseline efficiency = %g", res.Points[0].Efficiency)
	}
	for _, pt := range res.Points {
		// Weak scaling keeps efficiency high: per-rank slab constant, halo
		// constant per process. Allow generous jitter slack.
		if pt.Efficiency < 0.5 || pt.Efficiency > 1.2 {
			t.Errorf("p=%d: weak efficiency %g implausible", pt.P, pt.Efficiency)
		}
		if pt.ScaledSpeedup <= 0 {
			t.Errorf("p=%d: scaled speedup %g", pt.P, pt.ScaledSpeedup)
		}
	}
	// Scaled speedup grows with p (Gustafson's point) even though a
	// strong-scaling run at these sizes would have flattened.
	last := res.Points[len(res.Points)-1]
	first := res.Points[0]
	if last.ScaledSpeedup <= first.ScaledSpeedup {
		t.Errorf("scaled speedup did not grow: %g -> %g",
			first.ScaledSpeedup, last.ScaledSpeedup)
	}
}

func TestWeakScalingTable(t *testing.T) {
	res, err := RunWeakConvolution(QuickWeakOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.Table()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Weak scaling", "weak-eff", "Gustafson", "Amdahl", "implied serial share"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestWeakScalingValidation(t *testing.T) {
	o := QuickWeakOptions()
	o.Ps = []int{2, 4} // must start at 1
	if _, err := RunWeakConvolution(o); err == nil {
		t.Error("sweep without baseline accepted")
	}
	empty := QuickWeakOptions()
	empty.Ps = nil
	if _, err := RunWeakConvolution(empty); err == nil {
		t.Error("empty sweep accepted")
	}
	var r WeakResult
	if _, err := r.Table(); err == nil {
		t.Error("empty result table accepted")
	}
}
