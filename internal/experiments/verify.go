package experiments

import (
	"repro/internal/mpi"
	"repro/internal/verify"
)

// attachVerifier arms the runtime section/collective verifier on one run's
// config when on is set; the returned tool is nil otherwise. Every sweep
// driver threads its Options.Verify knob through here so the benchmark
// binaries' -verify flag means the same thing everywhere.
func attachVerifier(cfg *mpi.Config, on bool) *verify.Tool {
	if !on {
		return nil
	}
	v := verify.New()
	cfg.Tools = append(cfg.Tools, v)
	return v
}

// verifierViolations extracts a tool's report (nil tool → nil), so callers
// can collect unconditionally.
func verifierViolations(v *verify.Tool) []verify.Violation {
	if v == nil {
		return nil
	}
	return v.Violations()
}
