package experiments

import (
	"time"

	"repro/internal/lulesh"
	"repro/internal/machine"
	"repro/internal/mpi"
)

// "Scaling past the paper": the extreme-scale sweep configurations behind
// benchsweep targets E12/E13 and the convbench -extreme smoke. The paper's
// studies stop at 456 ranks because that is the Nehalem test system's core
// count; these run the same benchmark on the extrapolated ExtremeCluster
// with the 2-D decomposition (the 1-D split's geometry cannot even express
// 10,000 ranks over a 234-row executed image) and the lazy session runtime,
// reaching the scales where the speedup metric's expressiveness arguments
// actually bite. See EXPERIMENTS.md §"Scaling past the paper".

// ExtremeConvOptions returns the 10,000-rank convolution sweep: the paper
// image at Scale 16 over a 100×100 process grid at the top point, three
// time-steps, one repetition. Quick-mode wall time is a few seconds; the
// CSV is byte-identical at any Jobs value like every other sweep.
func ExtremeConvOptions() ConvOptions {
	return ConvOptions{
		Ps:    []int{1024, 4096, 10000},
		Steps: 3,
		Reps:  1,
		Scale: 16,
		Seed:  2017,
		Model: machine.ExtremeCluster(),
		TwoD:  true,
		Lazy:  true,
	}
}

// ExtremeLuleshOptions configures the 4096-rank LULESH point (E13): a
// 16×16×16 rank cube on the ExtremeCluster, two time-steps, with the
// executed mesh scaled down to 2³ elements per rank while communication
// and cost charges model the full S=4 problem.
type ExtremeLuleshOptions struct {
	Ranks int
	S     int
	Steps int
	Scale int
	Seed  uint64
	Model *machine.Model
}

// DefaultExtremeLuleshOptions is the committed E13 configuration.
func DefaultExtremeLuleshOptions() ExtremeLuleshOptions {
	return ExtremeLuleshOptions{
		Ranks: 4096,
		S:     4,
		Steps: 2,
		Scale: 2,
		Seed:  2017,
		Model: machine.ExtremeCluster(),
	}
}

// RunExtremeLulesh executes the 4k-rank LULESH point on the lazy runtime
// and returns the solver result (virtual wall time, diagnostics).
func RunExtremeLulesh(o ExtremeLuleshOptions) (*lulesh.Result, error) {
	cfg := mpi.Config{
		Ranks:   o.Ranks,
		Model:   o.Model,
		Seed:    o.Seed,
		Lazy:    true,
		Timeout: 10 * time.Minute,
	}
	return lulesh.Run(cfg, lulesh.Params{
		S:       o.S,
		Steps:   o.Steps,
		Threads: 1,
		Scale:   o.Scale,
	})
}
