package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/convolution"
	"repro/internal/fault"
	"repro/internal/lulesh"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/sched"
)

// This file exposes single-point experiment launches with caller-supplied
// tool chains. The sweep drivers (RunConvolution, RunHybrid) own their
// tool stack; live observability (cmd/secmon) instead needs "run THIS
// configuration with THESE tools attached, now" — e.g. an export.Recorder
// streaming Prometheus metrics while the ranks execute, chained after the
// reference profiler.

// LiveOptions configures one on-demand experiment run.
type LiveOptions struct {
	// Experiment selects the workload: "conv" (§5.1 image convolution),
	// "conv2d" (the 2-D decomposition on the extrapolated extreme cluster,
	// lazy session runtime — accepts rank counts past the 1-D geometry
	// limit, e.g. 10000), or "lulesh" (§5.2 proxy app).
	Experiment string
	// Ranks is the MPI process count (lulesh requires a perfect cube).
	Ranks int
	// Steps per run (0 picks a quick default).
	Steps int
	// Scale divides the executed problem size (0 picks a quick default).
	Scale int
	// Seed drives the machine model's stochastic components.
	Seed uint64
	// Threads is the OpenMP team per rank (lulesh only; default 1).
	Threads int
	// Model overrides the machine (default: NehalemCluster for conv, KNL
	// for lulesh — the paper's machines).
	Model *machine.Model
	// Tools are attached in order, exactly as mpi.Config.Tools.
	Tools []mpi.Tool
	// Timeout is the deadlock watchdog (default 10 minutes).
	Timeout time.Duration
	// Fault arms a deterministic fault plan in the run's runtime; the
	// monitor's observers (trace collectors, export recorders) see the
	// injected events live.
	Fault *fault.Plan
	// Deadline arms the deadlock detector (default 30s when Fault is set,
	// off otherwise) — a faulty live run must end in a per-rank blocked
	// report, not a hung monitor.
	Deadline time.Duration
}

func (o LiveOptions) withDefaults() (LiveOptions, error) {
	switch o.Experiment {
	case "conv", "":
		o.Experiment = "conv"
		if o.Model == nil {
			o.Model = machine.NehalemCluster()
		}
		if o.Steps <= 0 {
			o.Steps = 40
		}
		if o.Scale <= 0 {
			o.Scale = 16
		}
	case "conv2d":
		// The extreme-scale session workload: 2-D tiles on the extrapolated
		// cluster, lazy bring-up, few steps — 10,000 declared ranks resolve
		// in seconds without pre-allocating rank state.
		if o.Model == nil {
			o.Model = machine.ExtremeCluster()
		}
		if o.Steps <= 0 {
			o.Steps = 2
		}
		if o.Scale <= 0 {
			o.Scale = 16
		}
	case "lulesh":
		if o.Model == nil {
			o.Model = machine.KNL()
		}
		if o.Steps <= 0 {
			o.Steps = 5
		}
		if o.Scale <= 0 {
			o.Scale = 4
		}
		if o.Threads <= 0 {
			o.Threads = 1
		}
	default:
		return o, fmt.Errorf("experiments: unknown experiment %q (want conv, conv2d or lulesh)", o.Experiment)
	}
	if o.Ranks <= 0 {
		return o, fmt.Errorf("experiments: Ranks must be >= 1, got %d", o.Ranks)
	}
	if o.Seed == 0 {
		o.Seed = 2017
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Minute
	}
	return o, nil
}

// Resolved returns the options with every default filled in — the exact
// configuration RunLive will execute — or the validation error it would
// fail with. Monitors report resolved values, not raw request input.
func (o LiveOptions) Resolved() (LiveOptions, error) {
	return o.withDefaults()
}

// CacheKey renders the run's identity for result caching: every field that
// influences the simulated execution — workload, machine, geometry, seeds,
// the fault plan (via its canonical key) and the deadlock deadline (it
// decides how a wedged run fails). Tool attachments deliberately do not
// participate: they observe the run without perturbing virtual time. Call
// it on Resolved() options so defaulted and explicit spellings of the same
// configuration share an entry.
func (o LiveOptions) CacheKey() string {
	model := ""
	if o.Model != nil {
		model = o.Model.Name
	}
	return strings.Join([]string{
		o.Experiment,
		model,
		strconv.Itoa(o.Ranks),
		strconv.Itoa(o.Steps),
		strconv.Itoa(o.Scale),
		strconv.FormatUint(o.Seed, 10),
		strconv.Itoa(o.Threads),
		o.Fault.Key(),
		o.Deadline.String(),
	}, "|")
}

// SeqBaseline measures the sequential wall time of the configured workload
// — the Σ_j f_j(n0, 1) the Eq. 6 partial bounds divide. Only the
// convolution workload has a calibrated sequential path; lulesh returns 0
// with no error, meaning "bounds unavailable".
func SeqBaseline(o LiveOptions) (float64, error) {
	o, err := o.withDefaults()
	if err != nil {
		return 0, err
	}
	if o.Experiment != "conv" && o.Experiment != "conv2d" {
		return 0, nil
	}
	params := convolution.Params{
		Width: 5616, Height: 3744,
		Steps: o.Steps, Scale: o.Scale, Seed: o.Seed, SkipKernel: true,
	}
	return seqBaselineCached(params, o.Model)
}

// liveLimiter bounds concurrent RunLive executions so an on-demand monitor
// cannot oversubscribe the host while a sweep is regenerating figures. The
// capacity tracks the process-wide worker default at each admission.
var liveLimiter = sched.NewLimiter(1)

// RunLive executes one experiment run with the caller's tool chain
// attached and returns the run report. The tools observe the run exactly
// as the sweep drivers' profiler does — same hooks, same virtual clock.
func RunLive(o LiveOptions) (*mpi.Report, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	liveLimiter.Resize(sched.Workers(0))
	liveLimiter.Acquire()
	defer liveLimiter.Release()
	cfg := mpi.Config{
		Ranks:   o.Ranks,
		Model:   o.Model,
		Seed:    o.Seed,
		Tools:   o.Tools,
		Timeout: o.Timeout,
	}
	applyFault(&cfg, o.Fault, o.Deadline)
	switch o.Experiment {
	case "conv":
		params := convolution.Params{
			Width: 5616, Height: 3744,
			Steps: o.Steps, Scale: o.Scale, Seed: o.Seed, SkipKernel: true,
		}
		res, err := convolution.Run(cfg, params)
		if err != nil {
			return nil, fmt.Errorf("experiments: live conv p=%d: %w", o.Ranks, err)
		}
		return res.Report, nil
	case "conv2d":
		cfg.Lazy = true
		params := convolution.Params{
			Width: 5616, Height: 3744,
			Steps: o.Steps, Scale: o.Scale, Seed: o.Seed, SkipKernel: true,
		}
		res, err := convolution.Run2D(cfg, params)
		if err != nil {
			return nil, fmt.Errorf("experiments: live conv2d p=%d: %w", o.Ranks, err)
		}
		return res.Report, nil
	case "lulesh":
		cfg.ThreadsPerRank = o.Threads
		// Per-rank edge from Table 7's budget where possible; any cube of
		// ranks works as long as Scale divides S.
		s := 24
		if o.Scale > 0 && s%o.Scale != 0 {
			return nil, fmt.Errorf("experiments: lulesh scale %d must divide s=%d", o.Scale, s)
		}
		params := lulesh.Params{
			S: s, Steps: o.Steps, Threads: o.Threads, Scale: o.Scale, SedovEnergy: 1e4,
		}
		res, err := lulesh.Run(cfg, params)
		if err != nil {
			return nil, fmt.Errorf("experiments: live lulesh p=%d: %w", o.Ranks, err)
		}
		return res.Report, nil
	}
	panic("unreachable")
}
