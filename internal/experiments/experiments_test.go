package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/convolution"
	"repro/internal/lulesh"
	"repro/internal/machine"
	"repro/internal/waitstate"
)

// The shape assertions below are the machine-checkable form of the paper's
// qualitative claims; they run on the reduced Quick sweeps.

func runQuickConv(t *testing.T) *ConvResult {
	t.Helper()
	res, err := RunConvolution(QuickConvOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConvSweepBasics(t *testing.T) {
	res := runQuickConv(t)
	if len(res.Points) != len(QuickConvOptions().Ps) {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.SeqTime <= 0 {
		t.Fatal("no sequential baseline")
	}
	for _, pt := range res.Points {
		if pt.Wall <= 0 || pt.Speedup <= 0 {
			t.Errorf("degenerate point %+v", pt)
		}
		if pt.Speedup > float64(pt.P)*1.05 {
			t.Errorf("super-linear speedup %g at p=%d", pt.Speedup, pt.P)
		}
	}
}

func TestConvShareShiftsFromConvolveToHalo(t *testing.T) {
	// Fig. 5(a)'s core claim: the convolution share decreases with p while
	// the communication share increases.
	res := runQuickConv(t)
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.Shares[convolution.SecConvolve] >= first.Shares[convolution.SecConvolve] {
		t.Errorf("CONVOLVE share did not fall: %g -> %g",
			first.Shares[convolution.SecConvolve], last.Shares[convolution.SecConvolve])
	}
	if last.Shares[convolution.SecHalo] <= first.Shares[convolution.SecHalo] {
		t.Errorf("HALO share did not rise: %g -> %g",
			first.Shares[convolution.SecHalo], last.Shares[convolution.SecHalo])
	}
}

func TestConvHaloTotalGrows(t *testing.T) {
	// Fig. 5(b): total communication time is an increasing function of p.
	res := runQuickConv(t)
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.Totals[convolution.SecHalo] <= first.Totals[convolution.SecHalo] {
		t.Errorf("total HALO did not grow: %g -> %g",
			first.Totals[convolution.SecHalo], last.Totals[convolution.SecHalo])
	}
}

func TestConvBoundsDominateSpeedup(t *testing.T) {
	// Eq. 6 on measured data: every section bound ≥ the measured speedup.
	res := runQuickConv(t)
	if err := res.Study.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, pt := range res.Points {
		bounds, err := res.Study.BoundsAt(pt.P)
		if err != nil {
			t.Fatal(err)
		}
		for label, b := range bounds {
			if pt.Speedup > b*(1+1e-9) {
				t.Errorf("p=%d: speedup %g above bound %g of %s", pt.P, pt.Speedup, b, label)
			}
		}
	}
}

func TestConvHaloBoundDecreases(t *testing.T) {
	// Fig. 6's trend: the HALO bound tightens as p grows.
	res := runQuickConv(t)
	rows := res.Study.BoundTable(convolution.SecHalo)
	if len(rows) < 2 {
		t.Fatal("no bound rows")
	}
	if rows[len(rows)-1].Bound >= rows[0].Bound {
		t.Errorf("HALO bound did not tighten: %+v", rows)
	}
}

func TestConvRenderers(t *testing.T) {
	res := runQuickConv(t)
	for name, out := range map[string]string{
		"5a": res.Fig5a(), "5b": res.Fig5b(), "5c": res.Fig5c(),
		"5d": res.Fig5d(), "6": res.Fig6(),
	} {
		if !strings.Contains(out, "Fig") {
			t.Errorf("renderer %s produced %q", name, out)
		}
		if len(strings.Split(out, "\n")) < len(res.Points) {
			t.Errorf("renderer %s too short:\n%s", name, out)
		}
	}
	if !strings.Contains(res.Fig5a(), "%") {
		t.Error("Fig5a has no percentages")
	}
	if !strings.Contains(res.Fig6(), "HALO") {
		t.Error("Fig6 missing HALO caption")
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(res.Points)+1 {
		t.Errorf("CSV lines = %d", lines)
	}
}

func TestConvDiagnosisExplainsTheBound(t *testing.T) {
	// End-to-end acceptance of the wait-state wiring: at a mid-size scale of
	// the Fig. 5(d) sweep the HALO section binds the speedup, and the
	// diagnosis columns must both name it and classify why with a
	// communication cause — while at the smallest scale the run is still
	// compute-bound on CONVOLVE.
	o := QuickConvOptions()
	o.Ps = []int{2, 64}
	res, err := RunConvolution(o)
	if err != nil {
		t.Fatal(err)
	}
	small, mid := res.Points[0].Diag, res.Points[1].Diag
	if small == nil || mid == nil {
		t.Fatal("Diagnose on but no diagnosis recorded")
	}
	if small.Section != convolution.SecConvolve || small.Cause != waitstate.CauseCompute {
		t.Errorf("p=2 diagnosis = %s/%s, want %s/%s",
			small.Section, small.Cause, convolution.SecConvolve, waitstate.CauseCompute)
	}
	if mid.Section != convolution.SecHalo {
		t.Errorf("p=64 binding section = %q, want %q", mid.Section, convolution.SecHalo)
	}
	switch mid.Cause {
	case waitstate.CauseLateSender, waitstate.CauseTransfer, waitstate.CauseCollectiveWait:
	default:
		t.Errorf("p=64 HALO cause = %q, want a wait-state classification", mid.Cause)
	}
	if mid.WaitIn <= 0 {
		t.Errorf("p=64 HALO wait_in = %g, want > 0", mid.WaitIn)
	}
	for _, d := range []*PointDiagnosis{small, mid} {
		if d.CritShare < 0 || d.CritShare > 1 {
			t.Errorf("crit share %g out of [0,1]", d.CritShare)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "diag_section") || !strings.Contains(buf.String(), convolution.SecHalo+",") {
		t.Errorf("CSV missing diagnosis columns:\n%s", buf.String())
	}
}

func TestConvDefaultsFilledIn(t *testing.T) {
	o := QuickConvOptions()
	o.Model = nil
	o.Reps = 0
	o.Ps = []int{2}
	if _, err := RunConvolution(o); err != nil {
		t.Fatal(err)
	}
}

func TestHybridSweepAndFig10(t *testing.T) {
	res, err := RunHybrid(QuickHybridOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(QuickHybridOptions().Ranks)*len(QuickHybridOptions().Threads) {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Point(1, 24) == nil || res.Point(8, 4) == nil {
		t.Fatal("Point lookup failed")
	}
	if res.Point(99, 1) != nil {
		t.Error("phantom point")
	}
	a, err := res.AnalyzeFig10()
	if err != nil {
		t.Fatal(err)
	}
	// Shape claims of Fig. 10 on the KNL model.
	if a.InflexionThreads <= 1 {
		t.Errorf("inflexion at %d threads", a.InflexionThreads)
	}
	if a.SpeedupAtInflexion <= 1 {
		t.Errorf("no acceleration at the inflexion: %g", a.SpeedupAtInflexion)
	}
	if a.LagrangeBound < a.SpeedupAtInflexion {
		t.Errorf("Lagrange bound %g below measured speedup %g",
			a.LagrangeBound, a.SpeedupAtInflexion)
	}
	if a.ElementsBound <= a.LagrangeBound {
		t.Errorf("single-section bound %g not looser than combined %g",
			a.ElementsBound, a.LagrangeBound)
	}
	// The Lagrange phases dominate, so the combined bound is close to the
	// measured speedup (paper: 8.16 vs 8.08).
	if a.LagrangeBound > a.SpeedupAtInflexion*1.6 {
		t.Errorf("combined bound %g too loose vs speedup %g",
			a.LagrangeBound, a.SpeedupAtInflexion)
	}
	out := a.Render()
	if !strings.Contains(out, "inflexion point") || !strings.Contains(out, "LagrangeElements") {
		t.Errorf("Fig10 render missing content:\n%s", out)
	}
}

func TestHybridMoreMPIHurtsOpenMPOnKNL(t *testing.T) {
	// Fig. 9: at p=8 on the KNL with many threads per rank the node is
	// oversubscribed and large teams slow the run down vs few threads.
	res, err := RunHybrid(QuickHybridOptions())
	if err != nil {
		t.Fatal(err)
	}
	lo := res.Point(8, 4)
	hi := res.Point(8, 128)
	if lo == nil || hi == nil {
		t.Fatal("points missing")
	}
	if hi.Wall <= lo.Wall {
		t.Errorf("oversubscribed hybrid (%g) not slower than moderate (%g)", hi.Wall, lo.Wall)
	}
}

func TestFig7Static(t *testing.T) {
	out := Fig7()
	for _, want := range []string{"110592", "48", "12", "64"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig7 missing %q:\n%s", want, out)
		}
	}
}

func TestScalingTableRender(t *testing.T) {
	res, err := RunHybrid(QuickHybridOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := res.ScalingTable("Fig 9 — KNL")
	if !strings.Contains(out, "LagrangeNodal") || !strings.Contains(out, "Fig 9") {
		t.Errorf("scaling table wrong:\n%s", out)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "ranks,threads,") {
		t.Errorf("CSV header wrong: %q", buf.String()[:30])
	}
}

func TestChooseScale(t *testing.T) {
	cases := []struct{ s, maxScale, want int }{
		{48, 4, 4}, {24, 4, 4}, {16, 4, 4}, {12, 4, 4},
		{12, 8, 6}, {4, 4, 2}, {9, 4, 3}, {5, 4, 1},
	}
	for _, c := range cases {
		if got := chooseScale(c.s, c.maxScale); got != c.want {
			t.Errorf("chooseScale(%d, %d) = %d, want %d", c.s, c.maxScale, got, c.want)
		}
	}
}

func TestSForUnknownRanks(t *testing.T) {
	if _, err := sFor(5); err == nil {
		t.Error("unknown rank count accepted")
	}
}

func TestBroadwellMPIBeatsOpenMP(t *testing.T) {
	// Fig. 8's conclusion: "it is more optimal to parallelize on top of
	// MPI" — compare 8 workers each way at equal total elements.
	o := HybridOptions{
		Model:    machine.DualBroadwell(),
		Ranks:    []int{1, 8},
		Threads:  []int{1, 8},
		Steps:    3,
		MaxScale: 8,
		Seed:     2017,
	}
	res, err := RunHybrid(o)
	if err != nil {
		t.Fatal(err)
	}
	mpi8 := res.Point(8, 1)
	omp8 := res.Point(1, 8)
	if mpi8 == nil || omp8 == nil {
		t.Fatal("points missing")
	}
	if mpi8.Wall >= omp8.Wall {
		t.Errorf("8 MPI ranks (%g) not faster than 8 OpenMP threads (%g)",
			mpi8.Wall, omp8.Wall)
	}
	// And OpenMP must still help over pure sequential at p=1 ("OpenMP is
	// advantageous when the problem is large").
	seq := res.Point(1, 1)
	if omp8.Wall >= seq.Wall {
		t.Errorf("OpenMP (%g) did not beat sequential (%g)", omp8.Wall, seq.Wall)
	}
	_ = lulesh.Sections // keep import meaningful if labels change
}
