// Command benchsweep times the EXPERIMENTS.md regeneration targets E1–E9,
// the POP-enabled sweep-CSV target E11, and the extreme-scale targets
// E12 (10k-rank 2-D convolution sweep), E13 (4k-rank LULESH point) and
// E14 (the E12 sweep with the streaming telemetry tool attached), and
// writes BENCH_sweep.json — the repository's perf trajectory. Each
// entry records the wall-clock time, heap allocation count/bytes and the
// process peak RSS after regenerating one figure exactly the way the bench
// binaries do, so a PR that slows a sweep down or reintroduces per-message
// allocations shows up as a diff against the committed baseline.
//
// Usage:
//
//	benchsweep [-quick] [-j N] [-o BENCH_sweep.json]
//
// The committed baseline is quick mode (-quick): paper-scale sweeps take
// core-hours and belong to the bench binaries, while the quick sweeps
// exercise the same code paths in seconds and are what CI can afford.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

// result is one timed regeneration target.
type result struct {
	ID string `json:"id"`
	// Desc names the figure the target regenerates.
	Desc string `json:"desc"`
	// WallSeconds is the real elapsed time of the regeneration.
	WallSeconds float64 `json:"wall_seconds"`
	// Allocs/AllocBytes are the heap allocation deltas over the target
	// (runtime.MemStats Mallocs/TotalAlloc).
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
	// PeakRSSBytes is the process high-water RSS (VmHWM) after the target —
	// a monotone watermark, so the interesting number is the last entry's
	// and any jump between entries. Zero where /proc is unavailable.
	PeakRSSBytes uint64 `json:"peak_rss_bytes"`
}

// report is the BENCH_sweep.json document.
type report struct {
	Schema int `json:"schema"`
	// Mode is "quick" or "paper".
	Mode string `json:"mode"`
	// Jobs is the resolved sweep-worker count the targets ran with.
	Jobs        int      `json:"jobs"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	GoVersion   string   `json:"go_version"`
	Experiments []result `json:"experiments"`
	// TotalWallSeconds sums the entries.
	TotalWallSeconds float64 `json:"total_wall_seconds"`
}

// peakRSS reads the VmHWM high-water mark from /proc/self/status, in
// bytes; 0 on platforms without procfs.
func peakRSS() uint64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// measure runs one target and records its cost.
func measure(id, desc string, run func() error) (result, error) {
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := run(); err != nil {
		return result{}, fmt.Errorf("%s: %w", id, err)
	}
	wall := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	return result{
		ID:           id,
		Desc:         desc,
		WallSeconds:  wall.Seconds(),
		Allocs:       after.Mallocs - before.Mallocs,
		AllocBytes:   after.TotalAlloc - before.TotalAlloc,
		PeakRSSBytes: peakRSS(),
	}, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchsweep: ")
	quick := flag.Bool("quick", true, "reduced sweeps (the committed baseline; -quick=false runs paper scale)")
	jobs := flag.Int("j", 0, "concurrent sweep workers (0 = GOMAXPROCS)")
	outPath := flag.String("o", "BENCH_sweep.json", "output file")
	flag.Parse()

	convOpts := experiments.PaperConvOptions()
	bwOpts := experiments.PaperBroadwellOptions()
	knlOpts := experiments.PaperKNLOptions()
	mode := "paper"
	if *quick {
		convOpts = experiments.QuickConvOptions()
		bwOpts = experiments.QuickHybridOptions()
		bwOpts.Model = experiments.PaperBroadwellOptions().Model
		knlOpts = experiments.QuickHybridOptions()
		mode = "quick"
	}
	convOpts.Jobs = *jobs
	bwOpts.Jobs = *jobs
	knlOpts.Jobs = *jobs
	// The extreme-scale targets run the same configuration in both modes:
	// they are already the "big" points (10k declared ranks), and their whole
	// purpose is proving the sharded lazy runtime keeps them in seconds.
	extremeOpts := experiments.ExtremeConvOptions()
	extremeOpts.Jobs = *jobs

	// Each target regenerates its figure the way the bench binary does: a
	// fresh sweep plus the rendering. E1–E5 share a sweep shape but are
	// timed independently — the per-figure cost is what the harness tracks
	// (only the sequential baseline is cached across them, as in convbench).
	renderConv := func(render func(*experiments.ConvResult) string) func() error {
		return func() error {
			res, err := experiments.RunConvolution(convOpts)
			if err != nil {
				return err
			}
			_ = render(res)
			return nil
		}
	}
	targets := []struct {
		id, desc string
		run      func() error
	}{
		{"E1", "Fig 5(a): % of execution time per section (convolution)",
			renderConv((*experiments.ConvResult).Fig5a)},
		{"E2", "Fig 5(b): total time per section",
			renderConv((*experiments.ConvResult).Fig5b)},
		{"E3", "Fig 5(c): average time per process per section",
			renderConv((*experiments.ConvResult).Fig5c)},
		{"E4", "Fig 5(d): speedup and HALO partial bounds",
			renderConv((*experiments.ConvResult).Fig5d)},
		{"E5", "Fig 6: inferred partial speedup bounds from HALO",
			renderConv((*experiments.ConvResult).Fig6)},
		{"E6", "Fig 7 (table): LULESH strong-scaling configurations",
			func() error { _ = experiments.Fig7(); return nil }},
		{"E7", "Fig 8: LULESH on dual Broadwell", func() error {
			res, err := experiments.RunHybrid(bwOpts)
			if err != nil {
				return err
			}
			_ = res.ScalingTable("Fig 8")
			return nil
		}},
		{"E8", "Fig 9: LULESH on KNL", func() error {
			res, err := experiments.RunHybrid(knlOpts)
			if err != nil {
				return err
			}
			_ = res.ScalingTable("Fig 9")
			return nil
		}},
		{"E9", "Fig 10: pure OpenMP scalability on KNL (p=1)", func() error {
			res, err := experiments.RunHybrid(knlOpts)
			if err != nil {
				return err
			}
			a, err := res.AnalyzeFig10()
			if err != nil {
				return err
			}
			_ = a.Render()
			return nil
		}},
		{"E11", "POP-enabled convolution sweep CSV (diag_* + pop_* columns)", func() error {
			res, err := experiments.RunConvolution(convOpts)
			if err != nil {
				return err
			}
			return res.WriteCSV(io.Discard)
		}},
		{"E12", "Extreme-scale 2-D convolution sweep CSV (1k/4k/10k ranks, lazy runtime)", func() error {
			res, err := experiments.RunConvolution(extremeOpts)
			if err != nil {
				return err
			}
			return res.WriteCSV(io.Discard)
		}},
		{"E13", "Extreme-scale LULESH point (4096 ranks, lazy runtime)", func() error {
			_, err := experiments.RunExtremeLulesh(experiments.DefaultExtremeLuleshOptions())
			return err
		}},
		{"E14", "Extreme-scale sweep with streaming telemetry attached (live Eq. 6 + POP)", func() error {
			opts := extremeOpts
			opts.Profile = true
			res, err := experiments.RunConvolution(opts)
			if err != nil {
				return err
			}
			if res.LargestProfile() == nil {
				return fmt.Errorf("E14: no telemetry profile produced")
			}
			return res.WriteCSV(io.Discard)
		}},
	}

	rep := report{
		Schema:     1,
		Mode:       mode,
		Jobs:       *jobs,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	for _, t := range targets {
		r, err := measure(t.id, t.desc, t.run)
		if err != nil {
			log.Fatal(err)
		}
		rep.Experiments = append(rep.Experiments, r)
		rep.TotalWallSeconds += r.WallSeconds
		log.Printf("%s  %7.3fs  %11d allocs  %s", r.ID, r.WallSeconds, r.Allocs, r.Desc)
	}

	f, err := os.Create(*outPath)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("total %.3fs (%s mode, jobs=%d) -> %s", rep.TotalWallSeconds, mode, *jobs, *outPath)
}
