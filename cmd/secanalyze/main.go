// Command secanalyze performs partial-speedup-bounding analysis (paper §2,
// Eq. 6) on a section profile produced by the prof package's CSV writer:
// for every section it prints the average per-process time and the speedup
// bound it imposes given the sequential baseline, tightest bound first.
//
// Usage:
//
//	secanalyze -profile run.csv -seq 5589.84
//
// -profile also accepts a streaming telemetry summary (the JSON written by
// convbench/luleshbench -profile or secmon's /profile.json) — the format is
// sniffed from the file's first byte — and renders the full live report:
// section table with Eq. 6 bounds, the binding diagnosis, POP factors,
// interval series and exemplar receives. With -heatmap-csv the summary's
// rank×time wait heatmap is additionally written as CSV; with -chrome-trace
// the interval series becomes Chrome-trace counter tracks.
//
// It can also render an ASCII timeline from a trace CSV:
//
//	secanalyze -trace trace.csv [-width 100] [-focus HALO,CONVOLVE]
//
// or run the wait-state and critical-path analysis over a recorded trace
// (one with message and collective events; see trace.Collector), printing
// the binding section, its dominant cause, and the per-rank accounting:
//
//	secanalyze -waitstate trace.csv [-seq 5589.84]
//
// or compute the POP efficiency tree (load balance, transfer and
// serialisation efficiencies, plus the hybrid MPI+OpenMP split when the
// trace carries thread-team regions) joined with the Eq. 6 binding
// verdict, optionally time-resolved and exported as CSV:
//
//	secanalyze -pop trace.csv [-seq 5589.84] [-intervals 8] [-csv eff.csv]
//
// or audit a recorded trace against the section and collective contracts
// the runtime verifier checks live (internal/verify), exiting nonzero when
// the trace violates them:
//
//	secanalyze -verify trace.csv
//
// With -out <dir> every rendered report is additionally written to a file
// in that directory (created if missing) instead of only stdout.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/balance"
	"repro/internal/core"
	"repro/internal/pop"
	"repro/internal/prof"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/verify"
	"repro/internal/waitstate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("secanalyze: ")
	profilePath := flag.String("profile", "", "profile CSV (from prof.Profile.WriteCSV) or streaming telemetry JSON summary (format sniffed)")
	heatCSV := flag.String("heatmap-csv", "", "with a telemetry summary: also write the rank x time wait heatmap as CSV")
	chromePath := flag.String("chrome-trace", "", "with a telemetry summary: also write the interval series as Chrome-trace counter tracks")
	seq := flag.Float64("seq", 0, "sequential baseline time in seconds (required with -profile)")
	perRankPath := flag.String("perrank", "", "per-rank profile CSV (from prof.Profile.WritePerRankCSV): load-balance analysis")
	tracePath := flag.String("trace", "", "trace CSV (from trace.Buffer.WriteCSV)")
	waitPath := flag.String("waitstate", "", "trace CSV with message events: wait-state and critical-path analysis (optional -seq adds Eq. 6 bounds)")
	popPath := flag.String("pop", "", "trace CSV with message events: POP efficiency tree joined with the Eq. 6 binding (optional -seq, -intervals, -csv)")
	intervals := flag.Int("intervals", 8, "time-resolved interval count for -pop (0 disables)")
	popCSV := flag.String("csv", "", "with -pop: also write the per-section efficiency CSV to this file")
	verifyPath := flag.String("verify", "", "trace CSV: replay the runtime verifier's section/collective checks offline; exits nonzero on violations")
	width := flag.Int("width", 100, "timeline width in columns")
	focus := flag.String("focus", "", "comma-separated section labels for the timeline")
	outDir := flag.String("out", "", "directory to also write the report into (created if missing)")
	flag.Parse()

	var (
		run  func(io.Writer) error
		name string
	)
	switch {
	case *profilePath != "":
		if telemetry.LooksLikeSummary(*profilePath) {
			run = func(w io.Writer) error {
				return renderTelemetry(w, *profilePath, *heatCSV, *chromePath)
			}
			name = "telemetry.txt"
			break
		}
		run = func(w io.Writer) error { return analyzeProfile(w, *profilePath, *seq) }
		name = "bounds.txt"
	case *perRankPath != "":
		run = func(w io.Writer) error { return analyzeBalance(w, *perRankPath) }
		name = "balance.txt"
	case *tracePath != "":
		run = func(w io.Writer) error { return renderTimeline(w, *tracePath, *width, *focus) }
		name = "timeline.txt"
	case *waitPath != "":
		run = func(w io.Writer) error { return analyzeWaitstate(w, *waitPath, *seq) }
		name = "waitstate.txt"
	case *popPath != "":
		run = func(w io.Writer) error { return analyzePop(w, *popPath, *seq, *intervals, *popCSV) }
		name = "pop.txt"
	case *verifyPath != "":
		run = func(w io.Writer) error { return verifyTrace(w, *verifyPath) }
		name = "verify.txt"
	default:
		flag.Usage()
		os.Exit(2)
	}

	out := io.Writer(os.Stdout)
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*outDir, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("report written to %s\n", path)
		}()
		out = io.MultiWriter(os.Stdout, f)
	}
	if err := run(out); err != nil {
		log.Fatal(err)
	}
}

// analyzeBalance groups per-rank rows by section and prints the
// load-balance verdicts, most imbalance-weighted first.
func analyzeBalance(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rows, err := prof.ReadPerRankCSV(f)
	if err != nil {
		return err
	}
	type key struct {
		comm  int64
		label string
	}
	groups := map[key][]prof.PerRankRow{}
	var order []key
	for _, r := range rows {
		k := key{r.Comm, r.Label}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	var analyses []*balance.Analysis
	for _, k := range order {
		a, err := balance.AnalyzeRows(groups[k])
		if err != nil {
			return err
		}
		analyses = append(analyses, a)
	}
	sort.Slice(analyses, func(i, j int) bool {
		wi := analyses[i].Imbalance * analyses[i].MeanTotal
		wj := analyses[j].Imbalance * analyses[j].MeanTotal
		return wi > wj
	})
	fmt.Fprintf(w, "%-28s %6s %12s %9s %11s %7s\n",
		"section", "ranks", "mean/rank(s)", "max/µ-1", "persistent", "gini")
	for _, a := range analyses {
		fmt.Fprintf(w, "%-28s %6d %12.5g %9.3f %10.0f%% %7.3f\n",
			a.Label, a.Ranks, a.MeanTotal, a.Imbalance, 100*a.PersistentShare, a.Gini)
	}
	fmt.Fprintln(w)
	for _, a := range analyses {
		fmt.Fprintln(w, a.Verdict())
	}
	return nil
}

func analyzeProfile(w io.Writer, path string, seq float64) error {
	if seq <= 0 {
		return fmt.Errorf("-seq must be a positive sequential time")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rows, err := prof.ReadCSV(f)
	if err != nil {
		return err
	}
	type analyzed struct {
		prof.CSVRow
		bound float64
	}
	var out []analyzed
	for _, r := range rows {
		if r.AvgPerProc <= 0 {
			continue
		}
		b, err := core.PartialBound(seq, r.AvgPerProc)
		if err != nil {
			return err
		}
		out = append(out, analyzed{CSVRow: r, bound: b})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].bound < out[j].bound })
	fmt.Fprintf(w, "partial speedup bounds (Eq. 6) for seq = %g s, tightest first\n", seq)
	fmt.Fprintf(w, "%-28s %6s %10s %12s %14s %10s\n",
		"section", "ranks", "instances", "avg/proc(s)", "bound B", "imb(s)")
	for _, a := range out {
		fmt.Fprintf(w, "%-28s %6d %10d %12.5g %14.5g %10.4g\n",
			a.Label, a.Ranks, a.Instances, a.AvgPerProc, a.bound, a.ImbMean)
	}
	// Call out the tightest bound from an actual code section — MPI_MAIN
	// wraps the whole run, so its "bound" is just the measured speedup.
	for _, a := range out {
		if a.Label == "MPI_MAIN" {
			continue
		}
		fmt.Fprintf(w, "\ntightest bound: section %q caps the strong-scaling speedup at %.5g×\n",
			a.Label, a.bound)
		break
	}
	return nil
}

// renderTelemetry renders a streaming telemetry summary and the optional
// heatmap/Chrome-trace side artifacts.
func renderTelemetry(w io.Writer, path, heatCSV, chromePath string) error {
	p, err := telemetry.ReadSummaryFile(path)
	if err != nil {
		return err
	}
	if err := p.RenderTo(w); err != nil {
		return err
	}
	writeSide := func(out string, write func(io.Writer) error, what string) error {
		if out == "" {
			return nil
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%s written to %s\n", what, out)
		return nil
	}
	if err := writeSide(heatCSV, p.WriteHeatmapCSV, "heatmap CSV"); err != nil {
		return err
	}
	return writeSide(chromePath, p.WriteChromeCounters, "Chrome-trace counters")
}

// readTrace loads a recorded trace, tolerating a truncated or corrupt tail:
// the trace of a crashed or fault-killed run is damaged exactly where it is
// most interesting, so a *trace.CorruptError becomes a warning and the
// intact prefix is analyzed instead of failing the whole report.
func readTrace(path string) ([]trace.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := trace.ReadCSV(f)
	var ce *trace.CorruptError
	if errors.As(err, &ce) {
		log.Printf("warning: %s: %v; analyzing the %d events before the damage", path, ce, len(events))
		return events, nil
	}
	return events, err
}

// analyzeWaitstate replays a recorded trace through the wait-state engine
// and prints the full diagnosis report.
func analyzeWaitstate(w io.Writer, path string, seq float64) error {
	events, err := readTrace(path)
	if err != nil {
		return err
	}
	a, err := waitstate.Analyze(events, waitstate.Options{SeqTime: seq})
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, a.Render())
	return err
}

// analyzePop replays a recorded trace through the POP efficiency engine
// and prints the factor tree with the binding diagnosis; csvPath != ""
// additionally writes the per-section efficiency CSV. Malformed traces
// (unreadable header, empty stream) surface as errors — the command exits
// nonzero — while a corrupt tail degrades to the intact prefix like
// -waitstate.
func analyzePop(w io.Writer, path string, seq float64, intervals int, csvPath string) error {
	events, err := readTrace(path)
	if err != nil {
		return err
	}
	t, err := pop.Analyze(events, pop.Options{SeqTime: seq, Intervals: intervals})
	if err != nil {
		return err
	}
	if _, err := io.WriteString(w, t.Render()); err != nil {
		return err
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("efficiency CSV written to %s\n", csvPath)
	}
	return nil
}

// verifyTrace replays a recorded trace through the offline twin of the
// runtime verifier. The report lists every violation; a non-empty list is
// also an error so the command exits nonzero — the CI-able form of the
// benches' -verify flag.
func verifyTrace(w io.Writer, path string) error {
	events, err := readTrace(path)
	if err != nil {
		return err
	}
	vs := verify.CheckTrace(events)
	if len(vs) == 0 {
		_, err := fmt.Fprintf(w, "verify: %d events satisfy the section and collective contracts\n", len(events))
		return err
	}
	for _, v := range vs {
		if _, err := fmt.Fprintln(w, v.String()); err != nil {
			return err
		}
	}
	return fmt.Errorf("verify: %d violation(s) in %s", len(vs), path)
}

func renderTimeline(w io.Writer, path string, width int, focus string) error {
	events, err := readTrace(path)
	if err != nil {
		return err
	}
	var labels []string
	if focus != "" {
		labels = strings.Split(focus, ",")
	}
	fmt.Fprintf(w, "%-28s %10s %12s %12s %12s\n", "section", "intervals", "total(s)", "mean(s)", "span(s)")
	for _, s := range trace.Summarize(events) {
		fmt.Fprintf(w, "%-28s %10d %12.5g %12.5g %12.5g\n",
			s.Label, s.Intervals, s.Total, s.Mean, s.Last-s.First)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, trace.Timeline(events, width, labels...))
	return nil
}
