package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// writeTraceFile records a tiny two-rank section trace and returns it as
// CSV bytes plus the path it was written to under t.TempDir().
func writeTraceFile(t *testing.T) (string, []byte) {
	t.Helper()
	buf := trace.NewBuffer(0)
	for rank := 0; rank < 2; rank++ {
		buf.Add(trace.Event{T: 0.1, Rank: rank, Kind: trace.KindSectionEnter, Label: "CONVOLVE"})
		buf.Add(trace.Event{T: 0.9, Rank: rank, Kind: trace.KindSectionLeave, Label: "CONVOLVE"})
		buf.Add(trace.Event{T: 1.0, Rank: rank, Kind: trace.KindSectionEnter, Label: "HALO"})
		buf.Add(trace.Event{T: 1.2, Rank: rank, Kind: trace.KindSectionLeave, Label: "HALO"})
	}
	var csv bytes.Buffer
	if err := buf.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := os.WriteFile(path, csv.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, csv.Bytes()
}

func TestRenderTimelineIntactTrace(t *testing.T) {
	path, _ := writeTraceFile(t)
	var out bytes.Buffer
	if err := renderTimeline(&out, path, 60, ""); err != nil {
		t.Fatalf("renderTimeline: %v", err)
	}
	for _, label := range []string{"CONVOLVE", "HALO"} {
		if !strings.Contains(out.String(), label) {
			t.Errorf("timeline lacks section %q:\n%s", label, out.String())
		}
	}
}

// TestVerifyTrace drives the -verify mode: a balanced trace reports clean
// (nil error → exit 0), and a trace with a missing exit reports the
// violation and errors so main exits nonzero.
func TestVerifyTrace(t *testing.T) {
	path, _ := writeTraceFile(t)
	var out bytes.Buffer
	if err := verifyTrace(&out, path); err != nil {
		t.Fatalf("verifyTrace on a balanced trace: %v", err)
	}
	if !strings.Contains(out.String(), "satisfy") {
		t.Errorf("clean report missing the all-clear line:\n%s", out.String())
	}

	buf := trace.NewBuffer(0)
	buf.Add(trace.Event{T: 0.1, Rank: 0, Kind: trace.KindSectionEnter, Label: "CONVOLVE"})
	buf.Add(trace.Event{T: 0.1, Rank: 1, Kind: trace.KindSectionEnter, Label: "CONVOLVE"})
	buf.Add(trace.Event{T: 0.9, Rank: 0, Kind: trace.KindSectionLeave, Label: "CONVOLVE"})
	// Rank 1 never leaves.
	var csv bytes.Buffer
	if err := buf.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, csv.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err := verifyTrace(&out, bad)
	if err == nil || !strings.Contains(err.Error(), "violation(s)") {
		t.Fatalf("verifyTrace on an unbalanced trace: err = %v", err)
	}
	if !strings.Contains(out.String(), "section-unclosed") {
		t.Errorf("report does not name the unclosed section:\n%s", out.String())
	}
}

// TestReadTraceToleratesCorruptTail pins the degraded-analysis contract: a
// trace truncated mid-record — the shape a fault-killed run leaves behind —
// is analyzed up to the damage instead of failing the report.
func TestReadTraceToleratesCorruptTail(t *testing.T) {
	path, csv := writeTraceFile(t)
	cut := bytes.LastIndexByte(bytes.TrimRight(csv, "\n"), '\n')
	truncated := csv[:cut+1+3] // keep a 3-byte fragment of the final record
	if err := os.WriteFile(path, truncated, 0o644); err != nil {
		t.Fatal(err)
	}

	events, err := readTrace(path)
	if err != nil {
		t.Fatalf("readTrace on truncated file: %v", err)
	}
	if len(events) != 7 {
		t.Fatalf("got %d events from the intact prefix, want 7", len(events))
	}

	var out bytes.Buffer
	if err := renderTimeline(&out, path, 60, ""); err != nil {
		t.Fatalf("renderTimeline on truncated file: %v", err)
	}
	if !strings.Contains(out.String(), "CONVOLVE") {
		t.Errorf("truncated timeline lost intact sections:\n%s", out.String())
	}
}

// TestAnalyzePop drives the -pop mode end to end: the report carries the
// binding diagnosis, -csv writes the per-section efficiency table, a
// malformed file errors (main exits nonzero), and a corrupt tail degrades
// to the intact prefix like -waitstate.
func TestAnalyzePop(t *testing.T) {
	path, csv := writeTraceFile(t)
	csvOut := filepath.Join(t.TempDir(), "eff.csv")
	var out bytes.Buffer
	if err := analyzePop(&out, path, 10, 4, csvOut); err != nil {
		t.Fatalf("analyzePop: %v", err)
	}
	for _, want := range []string{"POP efficiency tree: p=2", "binds at p=2:", "efficiency"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report lacks %q:\n%s", want, out.String())
		}
	}
	eff, err := os.ReadFile(csvOut)
	if err != nil {
		t.Fatalf("efficiency CSV not written: %v", err)
	}
	if !strings.HasPrefix(string(eff), "section,p,") || !strings.Contains(string(eff), "CONVOLVE") {
		t.Errorf("efficiency CSV malformed:\n%s", eff)
	}

	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("not,a,trace\n1,2,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := analyzePop(&out, bad, 0, 0, ""); err == nil {
		t.Fatal("analyzePop on a malformed trace succeeded, want error")
	}

	cut := bytes.LastIndexByte(bytes.TrimRight(csv, "\n"), '\n')
	if err := os.WriteFile(path, csv[:cut+1+3], 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := analyzePop(&out, path, 0, 0, ""); err != nil {
		t.Fatalf("analyzePop on a corrupt tail: %v", err)
	}
	if !strings.Contains(out.String(), "POP efficiency tree") {
		t.Errorf("corrupt-tail report missing the tree:\n%s", out.String())
	}
}
