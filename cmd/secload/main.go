// Command secload is the in-repo chaos load driver for the secmon sweep
// service: it hammers /run with a storm of mixed clean and fault-injected
// sweep submissions, follows every accepted job to a terminal state, and
// asserts the service's core robustness contract — zero requests dropped
// without a response — while measuring throughput, latency percentiles and
// the shed rate.
//
// By default it spins up the service in-process on a loopback listener, so
// a single command is a full load test:
//
//	secload -n 200 -c 32 -faulted 0.2 -out BENCH_serve.json
//
// Point it at a running monitor instead with -addr:
//
//	secmon -addr :8080 &
//	secload -addr http://localhost:8080 -n 500 -c 64
//
// The process exits nonzero if any request goes unanswered, any accepted
// job fails to reach a terminal state within -timeout, or the service
// panics (the in-process server would take secload down with it).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/serve"
)

// config is the resolved command line.
type config struct {
	Addr        string  `json:"addr,omitempty"` // "" = in-process service
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	Faulted     float64 `json:"faulted_fraction"`
	Tenants     int     `json:"tenants"`
	QueueDepth  int     `json:"queue_depth"`
	MaxInflight int     `json:"max_inflight"`
	Timeout     string  `json:"timeout"`
	Seed        uint64  `json:"seed_base"`

	timeout time.Duration
}

// quantiles summarizes a latency population.
type quantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// report is the emitted JSON document (BENCH_serve.json).
type report struct {
	Schema   int    `json:"schema"`
	Config   config `json:"config"`
	Requests struct {
		Total      int `json:"total"`
		Answered   int `json:"answered"`
		Accepted   int `json:"accepted"`
		Shed       int `json:"shed"`
		Rejected   int `json:"rejected"`
		Unanswered int `json:"unanswered"`
	} `json:"requests"`
	Jobs struct {
		Done      int `json:"done"`
		Failed    int `json:"failed"`
		Cancelled int `json:"cancelled"`
		Retried   int `json:"retried"`
		CacheHits int `json:"cache_hits"`
	} `json:"jobs"`
	Latency struct {
		Submit   quantiles `json:"submit_seconds"`
		Complete quantiles `json:"complete_seconds"`
	} `json:"latency"`
	ShedRate       float64 `json:"shed_rate"`
	Throughput     float64 `json:"throughput_jobs_per_sec"`
	WallSeconds    float64 `json:"wall_seconds"`
	ContractBroken bool    `json:"contract_broken"`
}

// jobDoc is the slice of /jobs/{id} the driver reads.
type jobDoc struct {
	State    string `json:"state"`
	Retried  string `json:"retried"`
	CacheHit bool   `json:"cache_hit"`
}

// runDoc is the slice of the /run response the driver reads.
type runDoc struct {
	JobID string `json:"job_id"`
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.Addr, "addr", "", "target service base URL (default: run the service in-process)")
	flag.IntVar(&cfg.Requests, "n", 200, "total /run submissions")
	flag.IntVar(&cfg.Concurrency, "c", 32, "concurrent client workers")
	flag.Float64Var(&cfg.Faulted, "faulted", 0.2, "fraction of submissions with an armed kill+delay fault plan")
	flag.IntVar(&cfg.Tenants, "tenants", 8, "tenant identities cycled across submissions (and, in-process, admitted)")
	flag.IntVar(&cfg.QueueDepth, "queue-depth", 16, "in-process service per-tenant queue depth")
	flag.IntVar(&cfg.MaxInflight, "max-inflight", 0, "in-process service inflight cap (0 = worker count)")
	flag.Uint64Var(&cfg.Seed, "seed", 42, "base seed; request i runs with seed+i so every job is distinct work")
	timeout := flag.Duration("timeout", 60*time.Second, "budget for the whole storm including job completion")
	out := flag.String("out", "", "write the JSON report here instead of stdout")
	flag.Parse()
	cfg.Timeout = timeout.String()
	cfg.timeout = *timeout

	rep, err := storm(cfg, log.Printf)
	blob, jerr := json.MarshalIndent(rep, "", "  ")
	if jerr != nil {
		log.Fatal(jerr)
	}
	blob = append(blob, '\n')
	if *out != "" {
		if werr := os.WriteFile(*out, blob, 0o644); werr != nil {
			log.Fatal(werr)
		}
	} else {
		os.Stdout.Write(blob)
	}
	if err != nil {
		log.Fatalf("load contract broken: %v", err)
	}
}

// storm drives the configured request storm and builds the report. The
// returned error is non-nil when the robustness contract was broken; the
// report is valid either way.
func storm(cfg config, logf func(string, ...any)) (*report, error) {
	rep := &report{Schema: 1, Config: cfg}
	base := cfg.Addr
	if base == "" {
		svc := serve.NewService(serve.Options{
			Tenants:     cfg.Tenants,
			QueueDepth:  cfg.QueueDepth,
			MaxInflight: cfg.MaxInflight,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return rep, err
		}
		srv := &http.Server{Handler: serve.NewHandler(svc, serve.HandlerOptions{Logf: logf})}
		go srv.Serve(ln)
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		logf("secload: in-process service on %s", base)
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()

	client := &http.Client{Timeout: cfg.timeout}
	type outcome struct {
		answered bool
		code     int
		jobID    string
		submit   time.Duration // time to the /run response
		complete time.Duration // time to the job's terminal state
		doc      jobDoc
		err      error
	}
	outcomes := make([]outcome, cfg.Requests)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				o := &outcomes[i]
				url := fmt.Sprintf("%s/run?exp=conv&p=%d&steps=4&scale=32&seed=%d&seq=0&tenant=t%d",
					base, 2+2*(i%2), cfg.Seed+uint64(i), i%cfg.Tenants)
				// Spread the faulted submissions across the storm (37 is
				// coprime with 100, so the pattern cycles through all slots).
				if cfg.Faulted > 0 && float64((i*37)%100) < cfg.Faulted*100 {
					url += fmt.Sprintf("&fault=kill:rank=1,after=3&fault=delay:src=*,dst=*,prob=0.5,secs=1e-6&fault-seed=%d", i)
				}
				t0 := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					o.err = err
					continue
				}
				o.answered = true
				o.code = resp.StatusCode
				o.submit = time.Since(t0)
				var doc runDoc
				err = json.NewDecoder(resp.Body).Decode(&doc)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if o.code != http.StatusAccepted && o.code != http.StatusOK {
					continue
				}
				if err != nil || doc.JobID == "" {
					o.err = fmt.Errorf("accepted without a job id: %v", err)
					continue
				}
				o.jobID = doc.JobID
				// Follow the job to a terminal state.
				for {
					jr, err := client.Get(base + "/jobs/" + doc.JobID)
					if err != nil {
						o.err = err
						break
					}
					err = json.NewDecoder(jr.Body).Decode(&o.doc)
					io.Copy(io.Discard, jr.Body)
					jr.Body.Close()
					if err != nil {
						o.err = err
						break
					}
					switch o.doc.State {
					case "done", "failed", "cancelled":
						o.complete = time.Since(t0)
					}
					if o.complete > 0 {
						break
					}
					select {
					case <-ctx.Done():
						o.err = fmt.Errorf("job %s not terminal within budget", doc.JobID)
					case <-time.After(2 * time.Millisecond):
					}
					if o.err != nil {
						break
					}
				}
			}
		}()
	}
	for i := 0; i < cfg.Requests; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	rep.WallSeconds = time.Since(start).Seconds()

	var submitLat, completeLat []float64
	var firstErr error
	rep.Requests.Total = cfg.Requests
	for i := range outcomes {
		o := &outcomes[i]
		if !o.answered {
			rep.Requests.Unanswered++
			if firstErr == nil {
				firstErr = fmt.Errorf("request %d unanswered: %w", i, o.err)
			}
			continue
		}
		rep.Requests.Answered++
		submitLat = append(submitLat, o.submit.Seconds())
		switch {
		case o.code == http.StatusAccepted || o.code == http.StatusOK:
			rep.Requests.Accepted++
		case o.code == http.StatusTooManyRequests:
			rep.Requests.Shed++
			continue
		default:
			rep.Requests.Rejected++
			continue
		}
		if o.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("job %s: %w", o.jobID, o.err)
			}
			continue
		}
		completeLat = append(completeLat, o.complete.Seconds())
		switch o.doc.State {
		case "done":
			rep.Jobs.Done++
		case "failed":
			rep.Jobs.Failed++
		case "cancelled":
			rep.Jobs.Cancelled++
		}
		if o.doc.Retried != "" {
			rep.Jobs.Retried++
		}
		if o.doc.CacheHit {
			rep.Jobs.CacheHits++
		}
	}
	rep.Latency.Submit = summarize(submitLat)
	rep.Latency.Complete = summarize(completeLat)
	if rep.Requests.Answered > 0 {
		rep.ShedRate = float64(rep.Requests.Shed) / float64(rep.Requests.Answered)
	}
	if rep.WallSeconds > 0 {
		rep.Throughput = float64(len(completeLat)) / rep.WallSeconds
	}
	if firstErr != nil {
		rep.ContractBroken = true
	}
	logf("secload: %d answered (%d accepted, %d shed), %d done / %d failed / %d cancelled, %d retried, shed rate %.2f, %.1f jobs/s",
		rep.Requests.Answered, rep.Requests.Accepted, rep.Requests.Shed,
		rep.Jobs.Done, rep.Jobs.Failed, rep.Jobs.Cancelled, rep.Jobs.Retried,
		rep.ShedRate, rep.Throughput)
	return rep, firstErr
}

// summarize computes the latency quantiles of a sample set.
func summarize(lat []float64) quantiles {
	if len(lat) == 0 {
		return quantiles{}
	}
	sort.Float64s(lat)
	at := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return lat[i]
	}
	return quantiles{P50: at(0.50), P90: at(0.90), P99: at(0.99), Max: lat[len(lat)-1]}
}
