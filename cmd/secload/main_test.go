package main

import (
	"testing"
	"time"
)

// TestStormSmoke runs a small in-process storm and checks the robustness
// contract plus the report invariants secload is built to assert.
func TestStormSmoke(t *testing.T) {
	cfg := config{
		Requests: 60, Concurrency: 16, Faulted: 0.2,
		Tenants: 4, QueueDepth: 8,
		Timeout: "30s", Seed: 7, timeout: 30 * time.Second,
	}
	rep, err := storm(cfg, t.Logf)
	if err != nil {
		t.Fatalf("storm broke the contract: %v", err)
	}
	r := rep.Requests
	if r.Unanswered != 0 || rep.ContractBroken {
		t.Fatalf("unanswered requests: %+v", r)
	}
	if r.Answered != r.Total || r.Accepted+r.Shed+r.Rejected != r.Answered {
		t.Fatalf("request accounting does not balance: %+v", r)
	}
	if r.Accepted == 0 {
		t.Fatal("storm admitted nothing")
	}
	j := rep.Jobs
	if j.Done+j.Failed+j.Cancelled != r.Accepted {
		t.Fatalf("job accounting does not balance: jobs %+v vs accepted %d", j, r.Accepted)
	}
	// Every fault-killed job recovers via the disarmed retry.
	if j.Failed != 0 {
		t.Fatalf("%d jobs failed under the default retry policy", j.Failed)
	}
	if j.Retried == 0 {
		t.Fatal("faulted submissions never exercised the retry path")
	}
	if rep.Latency.Complete.P50 <= 0 || rep.Throughput <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
}
