// Command convbench regenerates the paper's convolution experiment
// (§5.1): Figs. 5(a)–5(d) and the Fig. 6 bound table, on the modeled
// Nehalem cluster.
//
// Usage:
//
//	convbench [-fig 5a|5b|5c|5d|6|all] [-quick] [-extreme] [-reps N] [-steps N]
//	          [-seed N] [-out results] [-csv out.csv] [-profile prof.json]
//	          [-j N] [-verify] [-fault-spec SPEC] [-fault-seed N] [-deadline D]
//	          [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With -profile the constant-memory streaming telemetry tool rides along on
// every point's rep-0 run; the largest completed point's summary (live
// Eq. 6 bounds, POP factors, Fig. 3 imbalance, heatmap, exemplars) is
// written as JSON and its binding diagnosis printed. Unlike -fault tracing
// this adds O(1) memory per rank shard, so it composes with -extreme.
//
// With -verify the runtime section/collective verifier rides along on every
// run and the command exits nonzero if any contract violation is detected.
//
// With -fault-spec the sweep runs in degraded mode: the plan is armed in
// every point's runtime, points whose runs fail carry their root cause in
// the CSV's `error` column, and the remaining points complete normally.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/diag"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/verify"
)

// resolveOut places a relative artifact path inside dir (created on
// demand); absolute paths and an empty dir pass through unchanged.
func resolveOut(dir, name string) (string, error) {
	if dir == "" || filepath.IsAbs(name) {
		return name, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	return filepath.Join(dir, name), nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("convbench: ")
	fig := flag.String("fig", "all", "figure to print: 5a, 5b, 5c, 5d, 6 or all")
	quick := flag.Bool("quick", false, "reduced sweep (seconds instead of minutes)")
	extreme := flag.Bool("extreme", false, "extreme-scale 2-D sweep (1k/4k/10k ranks on the extrapolated cluster, lazy runtime) instead of the paper sweep")
	reps := flag.Int("reps", 0, "override repetitions per point")
	steps := flag.Int("steps", 0, "override convolution steps")
	seed := flag.Uint64("seed", 0, "override base seed")
	csvPath := flag.String("csv", "", "also write the raw sweep as CSV")
	profilePath := flag.String("profile", "", "attach streaming telemetry and write the largest point's profile summary (JSON) to this file")
	outDir := flag.String("out", "", "directory for output artifacts (created if missing; default CWD)")
	plot := flag.Bool("plot", false, "also draw ASCII charts for Figs. 5(c) and 5(d)")
	weak := flag.Bool("weak", false, "additionally run the weak-scaling (Gustafson) sweep")
	decomp := flag.Bool("decomp", false, "additionally run the 1-D vs 2-D decomposition ablation (§3)")
	fit := flag.Bool("fit", false, "additionally fit T(p)=A+B/p+C·p per section and predict inflexions")
	jobs := flag.Int("j", 0, "concurrent sweep workers (0 = GOMAXPROCS; output is identical for every value)")
	verifyRuns := flag.Bool("verify", false, "attach the runtime section/collective verifier to every run and exit nonzero on violations")
	faultSpec := flag.String("fault-spec", "", `fault plan, e.g. "kill:rank=8,after=50;drop:src=0,dst=1,prob=0.5" (see internal/fault)`)
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the fault plan's probabilistic rules")
	deadline := flag.Duration("deadline", 0, "per-run deadlock detector deadline (default 30s when -fault-spec is set)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	var plan *fault.Plan
	if *faultSpec != "" {
		var err error
		if plan, err = fault.ParseSpec(*faultSpec, *faultSeed); err != nil {
			log.Fatal(err)
		}
	}

	stopProfiles, err := diag.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}

	opts := experiments.PaperConvOptions()
	if *quick {
		opts = experiments.QuickConvOptions()
	}
	if *extreme {
		// The extreme sweep is already second-scale; -quick has nothing to
		// reduce and is simply superseded.
		opts = experiments.ExtremeConvOptions()
	}
	if *reps > 0 {
		opts.Reps = *reps
	}
	if *steps > 0 {
		opts.Steps = *steps
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	opts.Jobs = *jobs
	opts.Fault = plan
	opts.Deadline = *deadline
	opts.Verify = *verifyRuns
	opts.Profile = *profilePath != ""

	fmt.Printf("machine: %s  |  image 5616x3744 RGB, %d steps, %d reps, scales %v\n\n",
		opts.Model.Name, opts.Steps, opts.Reps, opts.Ps)
	if plan != nil {
		fmt.Printf("fault plan armed (seed %d): %s\n\n", *faultSeed, plan)
	}
	res, err := experiments.RunConvolution(opts)
	if err != nil {
		log.Fatal(err)
	}
	violations := append([]verify.Violation(nil), res.Verify...)
	for _, pt := range res.Points {
		if pt.Err != "" {
			fmt.Printf("DEGRADED POINT p=%d: %s\n", pt.P, pt.Err)
		}
	}

	switch *fig {
	case "5a":
		fmt.Println(res.Fig5a())
	case "5b":
		fmt.Println(res.Fig5b())
	case "5c":
		fmt.Println(res.Fig5c())
	case "5d":
		fmt.Println(res.Fig5d())
	case "6":
		fmt.Println(res.Fig6())
	case "all":
		fmt.Println(res.Fig5a())
		fmt.Println(res.Fig5b())
		fmt.Println(res.Fig5c())
		fmt.Println(res.Fig5d())
		fmt.Println(res.Fig6())
	default:
		log.Fatalf("unknown figure %q (want 5a, 5b, 5c, 5d, 6 or all)", *fig)
	}

	if *plot {
		for _, render := range []func() (string, error){res.PlotSections, res.PlotSpeedup} {
			out, err := render()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(out)
		}
	}

	if *fit {
		fmt.Println(res.FitReport())
	}

	if *weak {
		wopts := experiments.PaperWeakOptions()
		if *quick {
			wopts = experiments.QuickWeakOptions()
		}
		wopts.Jobs = *jobs
		wopts.Fault = plan
		wopts.Deadline = *deadline
		wopts.Verify = *verifyRuns
		wres, err := experiments.RunWeakConvolution(wopts)
		if err != nil {
			log.Fatal(err)
		}
		violations = append(violations, wres.Verify...)
		table, err := wres.Table()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(table)
	}

	if *decomp {
		dopts := experiments.PaperDecompOptions()
		if *quick {
			dopts = experiments.QuickDecompOptions()
		}
		dopts.Jobs = *jobs
		dopts.Fault = plan
		dopts.Deadline = *deadline
		dopts.Verify = *verifyRuns
		dres, err := experiments.RunDecompComparison(dopts)
		if err != nil {
			log.Fatal(err)
		}
		violations = append(violations, dres.Verify...)
		fmt.Println(dres.Table())
	}

	if *csvPath != "" {
		path, err := resolveOut(*outDir, *csvPath)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("raw sweep written to %s\n", path)
	}

	if *profilePath != "" {
		prof := res.LargestProfile()
		if prof == nil {
			log.Fatal("profile: every profiled point failed; no summary to write")
		}
		path, err := resolveOut(*outDir, *profilePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := prof.WriteFile(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry: %s\n", prof.Summary())
		fmt.Printf("telemetry summary written to %s\n", path)
	}

	if err := stopProfiles(); err != nil {
		log.Fatal(err)
	}

	if *verifyRuns {
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "verify: "+v.String())
			}
			log.Fatalf("verify: %d violation(s) across the sweep's runs", len(violations))
		}
		fmt.Println("verify: every run satisfied the section and collective contracts")
	}
}
