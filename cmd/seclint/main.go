// Command seclint runs the repro mpi correctness suite — the five
// syntactic passes (sectionpair, sectionlabel, useafterrelease,
// collectiveorder, revokederr) and the three interprocedural dataflow
// passes (hotpathalloc, commdeadlock, lockorder) — over Go packages,
// multichecker-style.
//
// Usage:
//
//	seclint [flags] [package patterns]
//
// Patterns are directories relative to -dir ("./...", "./internal/mpi");
// the default is "./...". Findings print in go vet's text form by
// default; -sarif emits a SARIF 2.1.0 document instead (for code-scanning
// upload), and -o redirects either form to a file. -baseline filters
// findings through a committed suppression ledger (see
// analysis.Baseline); -write-baseline regenerates that ledger from the
// current findings. Exit status is 0 when the tree is clean after
// baseline filtering, 1 when any finding remains, 2 on a load or usage
// error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("seclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "directory package patterns are resolved against")
	tests := fs.Bool("tests", false, "also analyze in-package _test.go files")
	only := fs.String("only", "", "comma-separated subset of passes to run (default: all)")
	list := fs.Bool("list", false, "print the available passes and exit")
	sarif := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 document instead of text")
	out := fs.String("o", "", "write output to this file instead of stdout")
	baseline := fs.String("baseline", "", "filter findings through this suppression baseline file")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the -baseline file from the current findings and exit clean")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: seclint [flags] [package patterns]\n\nPasses:\n")
		for _, a := range analysis.All() {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "seclint: unknown pass %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	if *writeBaseline && *baseline == "" {
		fmt.Fprintln(stderr, "seclint: -write-baseline requires -baseline")
		return 2
	}

	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: *dir, Tests: *tests}, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "seclint: %v\n", err)
		return 2
	}
	findings, runErr := analysis.Run(pkgs, analyzers)

	if *writeBaseline {
		f, err := os.Create(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "seclint: %v\n", err)
			return 2
		}
		_, werr := analysis.NewBaseline(findings, *dir).WriteTo(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "seclint: writing baseline: %v\n", werr)
			return 2
		}
		fmt.Fprintf(stderr, "seclint: wrote %d finding(s) to %s\n", len(findings), *baseline)
		return 0
	}

	suppressed := 0
	if *baseline != "" {
		b, err := analysis.ReadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "seclint: %v\n", err)
			return 2
		}
		findings, suppressed = b.Filter(findings, *dir)
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "seclint: %v\n", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	if *sarif {
		if err := analysis.WriteSARIF(w, analyzers, findings, *dir); err != nil {
			fmt.Fprintf(stderr, "seclint: rendering SARIF: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(w, f)
		}
	}
	if suppressed > 0 {
		fmt.Fprintf(stderr, "seclint: %d finding(s) suppressed by %s\n", suppressed, *baseline)
	}
	if runErr != nil {
		fmt.Fprintf(stderr, "seclint: %v\n", runErr)
		return 2
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
