// Command seclint runs the repro mpi correctness suite — sectionpair,
// sectionlabel, useafterrelease, collectiveorder, revokederr — over Go
// packages, multichecker-style.
//
// Usage:
//
//	seclint [flags] [package patterns]
//
// Patterns are directories relative to -dir ("./...", "./internal/mpi");
// the default is "./...". Exit status is 0 when the tree is clean, 1 when
// any pass reported a finding, 2 on a load or usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("seclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "directory package patterns are resolved against")
	tests := fs.Bool("tests", false, "also analyze in-package _test.go files")
	only := fs.String("only", "", "comma-separated subset of passes to run (default: all)")
	list := fs.Bool("list", false, "print the available passes and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: seclint [flags] [package patterns]\n\nPasses:\n")
		for _, a := range analysis.All() {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "seclint: unknown pass %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: *dir, Tests: *tests}, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "seclint: %v\n", err)
		return 2
	}
	findings, err := analysis.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if err != nil {
		fmt.Fprintf(stderr, "seclint: %v\n", err)
		return 2
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
