package main

import (
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/analysis"
)

// TestRepoIsClean runs the full pass suite over this repository — the
// acceptance bar the lint CI job enforces: `seclint ./...` exits 0.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the whole repo is slow in -short mode")
	}
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate the repo root")
	}
	if n := len(analysis.All()); n != 8 {
		t.Fatalf("analysis.All() returned %d passes, want 8 — the CI gate silently narrowed", n)
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(thisFile)))
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: root}, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("load returned no packages")
	}
	findings, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
