package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/mpi"
	"repro/internal/serve"
)

// testHandler builds the handler exactly as main does: full observability,
// default queue policy.
func testHandler() http.Handler {
	return serve.NewHandler(serve.NewService(serve.Options{Observe: true}), serve.HandlerOptions{})
}

// get issues a request against the monitor handler and returns status+body.
func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	body, err := io.ReadAll(rr.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rr.Code, string(body)
}

func TestEndpointsBeforeAnyRun(t *testing.T) {
	h := testHandler()

	code, body := get(t, h, "/")
	if code != http.StatusOK || !strings.Contains(body, "/run?exp=conv") {
		t.Fatalf("index: code %d body %q", code, body)
	}
	if code, _ := get(t, h, "/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path: code %d, want 404", code)
	}
	code, body = get(t, h, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "secmon_up 1") {
		t.Fatalf("metrics without a run: code %d body %q", code, body)
	}
	if !strings.Contains(body, "serve_jobs_queued_total 0") {
		t.Fatalf("metrics lack the service families: %q", body)
	}
	for _, path := range []string{"/sections", "/trace.json", "/spans.json", "/waitstate.json", "/critpath.json", "/verify.json", "/efficiency.json", "/profile.json", "/heatmap.csv"} {
		if code, _ := get(t, h, path); code != http.StatusNotFound {
			t.Fatalf("%s without a run: code %d, want 404", path, code)
		}
	}
}

func TestRunRejectsBadParameters(t *testing.T) {
	h := testHandler()
	for _, path := range []string{
		"/run?p=x",
		"/run?steps=x",
		"/run?scale=x",
		"/run?threads=x",
		"/run?seed=-1",
		"/run?exp=unknown",
	} {
		if code, _ := get(t, h, path); code != http.StatusBadRequest {
			t.Fatalf("%s: code %d, want 400", path, code)
		}
	}
	// A run that fails after launch (lulesh needs a cube rank count)
	// surfaces its error on /run (with wait=1) and /sections.
	code, body := get(t, h, "/run?exp=lulesh&p=2&wait=1")
	if code != http.StatusOK || !strings.Contains(body, "error") {
		t.Fatalf("failing run: code %d body %q", code, body)
	}
	code, body = get(t, h, "/sections")
	if code != http.StatusOK || !strings.Contains(body, `"error"`) {
		t.Fatalf("sections after failed run: code %d body %q", code, body)
	}
}

// TestRunCompatConflict pins the pre-queue contract behind -compat /
// compat=1: single flight with 409 while busy, admission again once idle.
func TestRunCompatConflict(t *testing.T) {
	release := make(chan struct{})
	svc := serve.NewService(serve.Options{
		Observe:   true,
		SeqRunner: func(experiments.LiveOptions) (float64, error) { return 0, nil },
		Runner: func(o experiments.LiveOptions) (*mpi.Report, error) {
			<-release
			return &mpi.Report{WallTime: 1}, nil
		},
	})
	h := serve.NewHandler(svc, serve.HandlerOptions{Compat: true})
	if code, body := get(t, h, "/run?exp=conv&p=2"); code != http.StatusOK {
		t.Fatalf("first compat run: code %d body %q", code, body)
	}
	if code, _ := get(t, h, "/run?exp=conv&p=2"); code != http.StatusConflict {
		t.Fatalf("concurrent compat run: code %d, want 409", code)
	}
	close(release)
	// The guard is single-flight, not single-use: once the current run
	// finishes, /run admits the next launch.
	deadline := time.Now().Add(10 * time.Second)
	for svc.Active() {
		if time.Now().After(deadline) {
			t.Fatal("first run never finished")
		}
		time.Sleep(time.Millisecond)
	}
	if code, body := get(t, h, "/run?exp=conv&p=2&steps=4&scale=32&wait=1"); code != http.StatusOK {
		t.Fatalf("run after finish: code %d body %q", code, body)
	}
}

// TestRunFaultKnobs drives a faulty run through the HTTP surface: the
// fault/fault-seed/deadline knobs arm the plan, /faults.json serves the
// canonical event log live, and /metrics exposes section_fault_total.
func TestRunFaultKnobs(t *testing.T) {
	h := testHandler()
	for _, path := range []string{
		"/run?exp=conv&p=2&fault=bogus",
		"/run?exp=conv&p=2&fault=kill:rank=0&fault-seed=x",
		"/run?exp=conv&p=2&deadline=nope",
		"/run?exp=conv&p=2&deadline=-3s",
	} {
		if code, _ := get(t, h, path); code != http.StatusBadRequest {
			t.Fatalf("%s: code %d, want 400", path, code)
		}
	}

	code, body := get(t, h,
		"/run?exp=conv&p=4&steps=6&scale=32&seed=2017&wait=1&seq=0"+
			"&fault=delay:src=*,dst=*,prob=1,secs=1e-6&fault-seed=9&deadline=30s")
	if code != http.StatusOK {
		t.Fatalf("faulty run: code %d body %q", code, body)
	}
	var run struct {
		Status string `json:"status"`
		Fault  string `json:"fault"`
		Error  string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &run); err != nil {
		t.Fatalf("run response not JSON: %v\n%s", err, body)
	}
	if run.Status != "finished" || run.Error != "" {
		t.Fatalf("delay-only run should finish cleanly: %+v", run)
	}
	if !strings.Contains(run.Fault, "delay:") {
		t.Fatalf("run response does not echo the armed plan: %+v", run)
	}

	code, body = get(t, h, "/faults.json")
	if code != http.StatusOK {
		t.Fatalf("faults: code %d body %q", code, body)
	}
	var faults struct {
		Running bool   `json:"running"`
		Plan    string `json:"plan"`
		Seed    uint64 `json:"seed"`
		Counts  []struct {
			Kind  string `json:"kind"`
			Count int    `json:"count"`
		} `json:"counts"`
		Events []struct {
			Kind string  `json:"kind"`
			T    float64 `json:"t"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &faults); err != nil {
		t.Fatalf("faults not JSON: %v\n%s", err, body)
	}
	if faults.Running || faults.Seed != 9 || !strings.Contains(faults.Plan, "delay:") {
		t.Fatalf("faults header inconsistent: %s", body)
	}
	if len(faults.Events) == 0 || len(faults.Counts) == 0 {
		t.Fatalf("faults log empty despite prob=1 delays: %s", body)
	}
	for _, ev := range faults.Events {
		if ev.Kind != "delay" {
			t.Errorf("unexpected event kind %q", ev.Kind)
		}
	}
	if faults.Counts[0].Kind != "delay" || faults.Counts[0].Count != len(faults.Events) {
		t.Errorf("counts disagree with events: %+v vs %d events", faults.Counts, len(faults.Events))
	}

	code, body = get(t, h, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "section_fault_total") {
		t.Fatalf("metrics after faulty run lack section_fault_total: code %d", code)
	}

	// With retries disabled a fail-stop run surfaces the root cause but
	// still serves its partial observability, including the kill event.
	// Go's query parser drops any parameter containing the spec's `;` rule
	// separator, so multi-rule plans arrive as repeated fault= parameters —
	// one rule each.
	code, body = get(t, h,
		"/run?exp=conv&p=4&steps=6&scale=32&wait=1&seq=0&retry=0"+
			"&fault=kill:rank=2,after=5&fault=delay:src=*,dst=*,prob=1,secs=1e-6")
	if code != http.StatusOK || !strings.Contains(body, "fail-stop") {
		t.Fatalf("killed run: code %d body %q", code, body)
	}
	if !strings.Contains(body, "kill:") || !strings.Contains(body, "delay:") {
		t.Fatalf("multi-rule plan not rejoined from repeated fault= params: %q", body)
	}
	code, body = get(t, h, "/faults.json")
	if code != http.StatusOK || !strings.Contains(body, `"kill"`) {
		t.Fatalf("faults after kill: code %d body %q", code, body)
	}

	// Default policy: the same kill plan is retried on a disarmed plan and
	// the job recovers with the retry recorded.
	code, body = get(t, h,
		"/run?exp=conv&p=4&steps=6&scale=32&wait=1&seq=0&nocache=1&fault=kill:rank=2,after=5")
	if code != http.StatusOK || !strings.Contains(body, `"retried": "injected_kill"`) {
		t.Fatalf("kill not retried to success: code %d body %q", code, body)
	}
}

// TestVerifyKnob drives the verify=1 launch parameter: the verifier
// attaches to the run, /verify.json serves its report, and /metrics gains
// the section_verify_violations_total family.
func TestVerifyKnob(t *testing.T) {
	h := testHandler()

	// Without the knob the endpoint answers but reports itself disabled.
	code, body := get(t, h, "/run?exp=conv&p=2&steps=4&scale=32&wait=1&seq=0")
	if code != http.StatusOK {
		t.Fatalf("plain run: code %d body %q", code, body)
	}
	code, body = get(t, h, "/verify.json")
	if code != http.StatusOK {
		t.Fatalf("verify without knob: code %d", code)
	}
	var rep struct {
		Running    bool              `json:"running"`
		Enabled    bool              `json:"enabled"`
		OK         bool              `json:"ok"`
		Counts     map[string]uint64 `json:"counts"`
		Violations []struct {
			Class string `json:"class"`
		} `json:"violations"`
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("verify not JSON: %v\n%s", err, body)
	}
	if rep.Enabled {
		t.Fatalf("verifier reported enabled on a plain run: %s", body)
	}
	if code, body := get(t, h, "/metrics"); code != http.StatusOK ||
		strings.Contains(body, "section_verify_violations_total") {
		t.Fatalf("plain run leaked the verify family: code %d", code)
	}

	code, body = get(t, h, "/run?exp=conv&p=2&steps=4&scale=32&wait=1&seq=0&verify=1")
	if code != http.StatusOK || !strings.Contains(body, `"verify_ok": true`) {
		t.Fatalf("verified run: code %d body %q", code, body)
	}
	code, body = get(t, h, "/verify.json")
	if code != http.StatusOK {
		t.Fatalf("verify: code %d", code)
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("verify not JSON: %v\n%s", err, body)
	}
	if !rep.Enabled || !rep.OK || rep.Running || len(rep.Violations) != 0 {
		t.Fatalf("clean verified run reported: %s", body)
	}
	code, body = get(t, h, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, `section_verify_violations_total{class="any"} 0`) {
		t.Fatalf("metrics lack the zero verify counter: code %d", code)
	}
}

// TestGracefulShutdown pins the drain contract: Shutdown returns once
// in-flight responses complete, the listener closes, and Serve reports
// ErrServerClosed rather than a hard kill.
func TestGracefulShutdown(t *testing.T) {
	svc := serve.NewService(serve.Options{Observe: true})
	srv := &http.Server{Handler: serve.NewHandler(svc, serve.HandlerOptions{})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	base := "http://" + ln.Addr().String()
	resp, err := http.Get(base + "/")
	if err != nil {
		t.Fatalf("pre-shutdown request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-shutdown status %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// The service drains first (as main does on SIGTERM), then the listener.
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-errc:
		if err != http.ErrServerClosed {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if _, err := http.Get(base + "/"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

// TestFullRunAllEndpoints drives a small conv run to completion (wait=1)
// and checks every endpoint serves consistent data for it.
func TestFullRunAllEndpoints(t *testing.T) {
	h := testHandler()

	code, body := get(t, h, "/run?exp=conv&p=4&steps=6&scale=32&seed=2017&wait=1")
	if code != http.StatusOK {
		t.Fatalf("run: code %d body %q", code, body)
	}
	var run struct {
		Status  string  `json:"status"`
		JobID   string  `json:"job_id"`
		P       int     `json:"p"`
		TraceID string  `json:"trace_id"`
		Wall    float64 `json:"wall_seconds"`
		Error   string  `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &run); err != nil {
		t.Fatalf("run response not JSON: %v\n%s", err, body)
	}
	if run.Status != "finished" || run.Error != "" {
		t.Fatalf("run did not finish cleanly: %+v", run)
	}
	if run.P != 4 || run.Wall <= 0 || len(run.TraceID) != 32 || run.JobID == "" {
		t.Fatalf("run response inconsistent: %+v", run)
	}

	code, body = get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: code %d", code)
	}
	for _, needle := range []string{
		`section_time_seconds_count{comm="0",section="MPI_MAIN"}`,
		"section_imbalance_seconds",
		"section_partial_speedup_bound",
		"export_run_finished 1",
		"dropped_events 0",
		"serve_jobs_done_total 1",
	} {
		if !strings.Contains(body, needle) {
			t.Errorf("metrics missing %q", needle)
		}
	}

	code, body = get(t, h, "/sections")
	if code != http.StatusOK {
		t.Fatalf("sections: code %d", code)
	}
	var secs struct {
		Experiment string  `json:"experiment"`
		Ranks      int     `json:"ranks"`
		TraceID    string  `json:"trace_id"`
		Running    bool    `json:"running"`
		Wall       float64 `json:"wall_seconds"`
		Sections   []struct {
			Label string  `json:"label"`
			Bound float64 `json:"partial_bound"`
		} `json:"sections"`
	}
	if err := json.Unmarshal([]byte(body), &secs); err != nil {
		t.Fatalf("sections response not JSON: %v\n%s", err, body)
	}
	if secs.Experiment != "conv" || secs.Ranks != 4 || secs.Running ||
		secs.TraceID != run.TraceID || secs.Wall != run.Wall {
		t.Fatalf("sections header inconsistent with run: %s", body)
	}
	if len(secs.Sections) == 0 {
		t.Fatal("no sections reported")
	}
	sawBound := false
	for _, s := range secs.Sections {
		if s.Bound > 0 {
			sawBound = true
		}
	}
	if !sawBound {
		t.Error("no Eq. 6 partial bound in /sections despite seq baseline")
	}

	code, body = get(t, h, "/trace.json")
	if code != http.StatusOK {
		t.Fatalf("trace: code %d", code)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   struct {
			TraceID string `json:"trace_id"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 || trace.OtherData.TraceID != run.TraceID {
		t.Fatalf("trace inconsistent: %d events, id %q", len(trace.TraceEvents), trace.OtherData.TraceID)
	}

	code, body = get(t, h, "/spans.json")
	if code != http.StatusOK {
		t.Fatalf("spans: code %d", code)
	}
	var otlp struct {
		ResourceSpans []json.RawMessage `json:"resourceSpans"`
	}
	if err := json.Unmarshal([]byte(body), &otlp); err != nil {
		t.Fatalf("spans not JSON: %v", err)
	}
	if len(otlp.ResourceSpans) != 4 {
		t.Fatalf("spans: %d resources, want one per rank (4)", len(otlp.ResourceSpans))
	}

	code, body = get(t, h, "/waitstate.json")
	if code != http.StatusOK {
		t.Fatalf("waitstate: code %d body %q", code, body)
	}
	var ws struct {
		Experiment string `json:"experiment"`
		Running    bool   `json:"running"`
		Ranks      int    `json:"ranks"`
		Messages   int    `json:"messages"`
		Binding    *struct {
			Section string  `json:"section"`
			Cause   string  `json:"dominant_cause"`
			Bound   float64 `json:"partial_bound"`
		} `json:"binding"`
		Sections []struct {
			Section string  `json:"section"`
			WaitIn  float64 `json:"wait_in_seconds"`
		} `json:"sections"`
		RankBreakdown []struct {
			Wall     float64 `json:"wall_seconds"`
			Wait     float64 `json:"wait_seconds"`
			Compute  float64 `json:"compute_seconds"`
			Residual float64 `json:"residual_seconds"`
		} `json:"rank_breakdown"`
	}
	if err := json.Unmarshal([]byte(body), &ws); err != nil {
		t.Fatalf("waitstate not JSON: %v\n%s", err, body)
	}
	if ws.Experiment != "conv" || ws.Running || ws.Ranks != 4 {
		t.Fatalf("waitstate header inconsistent: %s", body)
	}
	if ws.Messages == 0 || len(ws.Sections) == 0 || len(ws.RankBreakdown) != 4 {
		t.Fatalf("waitstate analysis empty: %s", body)
	}
	if ws.Binding == nil || ws.Binding.Section == "" || ws.Binding.Cause == "" {
		t.Fatalf("waitstate has no binding verdict: %s", body)
	}
	if ws.Binding.Bound <= 0 {
		t.Errorf("binding section lacks the Eq. 6 bound (seq baseline was on): %+v", ws.Binding)
	}

	code, body = get(t, h, "/critpath.json")
	if code != http.StatusOK {
		t.Fatalf("critpath: code %d body %q", code, body)
	}
	var cp struct {
		Ranks      int     `json:"ranks"`
		Wall       float64 `json:"wall_seconds"`
		CritLen    float64 `json:"crit_len_seconds"`
		Coverage   float64 `json:"coverage"`
		PerSection []struct {
			Section string  `json:"section"`
			Share   float64 `json:"crit_share"`
		} `json:"per_section"`
		Segments []struct {
			Kind string  `json:"kind"`
			From float64 `json:"from"`
			To   float64 `json:"to"`
		} `json:"segments"`
	}
	if err := json.Unmarshal([]byte(body), &cp); err != nil {
		t.Fatalf("critpath not JSON: %v\n%s", err, body)
	}
	if cp.Ranks != 4 || cp.Wall <= 0 || len(cp.Segments) == 0 || len(cp.PerSection) == 0 {
		t.Fatalf("critpath empty: %s", body)
	}
	// Section events are in the stream, so the path must tile the wall.
	if diff := cp.Coverage - 1; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("critical path covers %g of the wall, want 1.0", cp.Coverage)
	}
	var share float64
	for _, sec := range cp.PerSection {
		share += sec.Share
	}
	if diff := share - 1; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("per-section shares sum to %g, want 1.0", share)
	}

	// The job surface serves the same run: registry row, document, artifact.
	code, body = get(t, h, "/jobs")
	if code != http.StatusOK || !strings.Contains(body, run.JobID) {
		t.Fatalf("jobs: code %d body %q", code, body)
	}
	code, body = get(t, h, "/jobs/"+run.JobID+"/result.csv")
	if code != http.StatusOK || !strings.HasPrefix(body, "t,") {
		t.Fatalf("result.csv: code %d", code)
	}
}

// TestTelemetryEndpoints drives a run to completion and checks the
// streaming-telemetry surface: /profile.json serves the constant-memory
// profile with the live Eq. 6 binding and POP factors, /heatmap.csv serves
// the bounded rank×time wait view, and /metrics carries the
// bounded-cardinality telemetry_* families.
func TestTelemetryEndpoints(t *testing.T) {
	h := testHandler()
	code, body := get(t, h, "/run?exp=conv&p=4&steps=6&scale=32&seed=2017&wait=1")
	if code != http.StatusOK {
		t.Fatalf("run: code %d body %q", code, body)
	}

	code, body = get(t, h, "/profile.json")
	if code != http.StatusOK {
		t.Fatalf("profile: code %d body %q", code, body)
	}
	var p struct {
		Schema   int     `json:"schema"`
		Ranks    int     `json:"ranks"`
		Finished bool    `json:"finished"`
		Wall     float64 `json:"wall_seconds"`
		Messages int64   `json:"messages"`
		Sections []struct {
			Section string  `json:"section"`
			Total   float64 `json:"total_seconds"`
			Bound   float64 `json:"partial_bound"`
			Cause   string  `json:"dominant_cause"`
		} `json:"sections"`
		Binding   string `json:"binding"`
		Diagnosis string `json:"diagnosis"`
		Global    *struct {
			Factors *struct {
				Parallel float64 `json:"parallel"`
			} `json:"factors"`
		} `json:"global"`
		Heatmap *struct {
			RowRanks int `json:"row_ranks"`
			Rows     []struct {
				RankLo int       `json:"rank_lo"`
				Wait   []float64 `json:"wait_seconds"`
			} `json:"rows"`
		} `json:"heatmap"`
	}
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("profile not JSON: %v\n%s", err, body)
	}
	if p.Schema != 1 || p.Ranks != 4 || !p.Finished || p.Wall <= 0 || p.Messages == 0 {
		t.Fatalf("profile header inconsistent: %s", body)
	}
	if len(p.Sections) == 0 {
		t.Fatal("profile has no sections")
	}
	if p.Binding == "" || p.Diagnosis == "" || !strings.Contains(p.Diagnosis, "binds at p=4") {
		t.Fatalf("profile lacks the live binding verdict: binding=%q diagnosis=%q", p.Binding, p.Diagnosis)
	}
	sawBound, sawCause := false, false
	for _, s := range p.Sections {
		if s.Bound > 0 {
			sawBound = true
		}
		if s.Cause != "" {
			sawCause = true
		}
	}
	if !sawBound {
		t.Error("no live Eq. 6 bound in /profile.json despite the seq baseline")
	}
	if !sawCause {
		t.Error("no dominant-cause verdict in /profile.json")
	}
	if p.Global == nil || p.Global.Factors == nil || p.Global.Factors.Parallel <= 0 {
		t.Fatalf("profile lacks the POP factor tree: %s", body)
	}
	if p.Heatmap == nil || len(p.Heatmap.Rows) == 0 {
		t.Fatalf("profile lacks the heatmap: %s", body)
	}

	code, body = get(t, h, "/heatmap.csv")
	if code != http.StatusOK {
		t.Fatalf("heatmap: code %d body %q", code, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "rank_lo,rank_hi,") {
		t.Fatalf("heatmap CSV malformed: %q", body)
	}
	if got := len(lines) - 1; got != len(p.Heatmap.Rows) {
		t.Errorf("heatmap CSV has %d rows, profile has %d", got, len(p.Heatmap.Rows))
	}

	code, body = get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: code %d", code)
	}
	for _, needle := range []string{
		"telemetry_section_seconds_total",
		"telemetry_section_bound",
		"telemetry_pop_efficiency",
		"telemetry_message_latency_seconds_bucket",
		"telemetry_series_dropped_total",
	} {
		if !strings.Contains(body, needle) {
			t.Errorf("metrics missing %q", needle)
		}
	}
}

// TestExtremeSessionRun drives the extreme-scale session workload through
// the HTTP surface: /run accepts ranks=10000 (the sharded lazy runtime
// materializes rank state on demand rather than pre-allocating it), and
// /metrics exposes the declared/active/materialized rank gauges.
func TestExtremeSessionRun(t *testing.T) {
	h := testHandler()
	code, body := get(t, h, "/run?exp=conv2d&p=10000&wait=1&seq=0")
	if code != http.StatusOK {
		t.Fatalf("extreme run: code %d body %q", code, body)
	}
	var run struct {
		Status string  `json:"status"`
		P      int     `json:"p"`
		Wall   float64 `json:"wall_seconds"`
		Error  string  `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &run); err != nil {
		t.Fatalf("run response not JSON: %v\n%s", err, body)
	}
	if run.Status != "finished" || run.Error != "" || run.P != 10000 || run.Wall <= 0 {
		t.Fatalf("extreme run did not finish cleanly: %+v", run)
	}

	code, body = get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: code %d body %q", code, body)
	}
	for _, want := range []string{
		"mpi_ranks_declared 10000",
		"mpi_ranks_active 10000",
		"mpi_ranks_materialized 10000",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
