package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// get issues a request against the monitor handler and returns status+body.
func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	body, err := io.ReadAll(rr.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rr.Code, string(body)
}

func TestEndpointsBeforeAnyRun(t *testing.T) {
	h := newServer().handler()

	code, body := get(t, h, "/")
	if code != http.StatusOK || !strings.Contains(body, "/run?exp=conv") {
		t.Fatalf("index: code %d body %q", code, body)
	}
	if code, _ := get(t, h, "/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path: code %d, want 404", code)
	}
	code, body = get(t, h, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "secmon_up 1") {
		t.Fatalf("metrics without a run: code %d body %q", code, body)
	}
	for _, path := range []string{"/sections", "/trace.json", "/spans.json"} {
		if code, _ := get(t, h, path); code != http.StatusNotFound {
			t.Fatalf("%s without a run: code %d, want 404", path, code)
		}
	}
}

func TestRunRejectsBadParameters(t *testing.T) {
	h := newServer().handler()
	for _, path := range []string{
		"/run?p=x",
		"/run?steps=x",
		"/run?scale=x",
		"/run?threads=x",
		"/run?seed=-1",
		"/run?exp=unknown",
	} {
		if code, _ := get(t, h, path); code != http.StatusBadRequest {
			t.Fatalf("%s: code %d, want 400", path, code)
		}
	}
	// A run that fails after launch (lulesh needs a cube rank count)
	// surfaces its error on /run (with wait=1) and /sections.
	code, body := get(t, h, "/run?exp=lulesh&p=2&wait=1")
	if code != http.StatusOK || !strings.Contains(body, "error") {
		t.Fatalf("failing run: code %d body %q", code, body)
	}
	code, body = get(t, h, "/sections")
	if code != http.StatusOK || !strings.Contains(body, `"error"`) {
		t.Fatalf("sections after failed run: code %d body %q", code, body)
	}
}

func TestRunConflictWhileRunning(t *testing.T) {
	s := newServer()
	s.cur = &runState{running: true}
	if code, _ := get(t, s.handler(), "/run?exp=conv&p=2"); code != http.StatusConflict {
		t.Fatalf("concurrent run: code %d, want 409", code)
	}
}

// TestFullRunAllEndpoints drives a small conv run to completion (wait=1)
// and checks every endpoint serves consistent data for it.
func TestFullRunAllEndpoints(t *testing.T) {
	h := newServer().handler()

	code, body := get(t, h, "/run?exp=conv&p=4&steps=6&scale=32&seed=2017&wait=1")
	if code != http.StatusOK {
		t.Fatalf("run: code %d body %q", code, body)
	}
	var run struct {
		Status  string  `json:"status"`
		P       int     `json:"p"`
		TraceID string  `json:"trace_id"`
		Wall    float64 `json:"wall_seconds"`
		Error   string  `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &run); err != nil {
		t.Fatalf("run response not JSON: %v\n%s", err, body)
	}
	if run.Status != "finished" || run.Error != "" {
		t.Fatalf("run did not finish cleanly: %+v", run)
	}
	if run.P != 4 || run.Wall <= 0 || len(run.TraceID) != 32 {
		t.Fatalf("run response inconsistent: %+v", run)
	}

	code, body = get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: code %d", code)
	}
	for _, needle := range []string{
		`section_time_seconds_count{comm="0",section="MPI_MAIN"}`,
		"section_imbalance_seconds",
		"section_partial_speedup_bound",
		"export_run_finished 1",
		"dropped_events 0",
	} {
		if !strings.Contains(body, needle) {
			t.Errorf("metrics missing %q", needle)
		}
	}

	code, body = get(t, h, "/sections")
	if code != http.StatusOK {
		t.Fatalf("sections: code %d", code)
	}
	var secs struct {
		Experiment string  `json:"experiment"`
		Ranks      int     `json:"ranks"`
		TraceID    string  `json:"trace_id"`
		Running    bool    `json:"running"`
		Wall       float64 `json:"wall_seconds"`
		Sections   []struct {
			Label string  `json:"label"`
			Bound float64 `json:"partial_bound"`
		} `json:"sections"`
	}
	if err := json.Unmarshal([]byte(body), &secs); err != nil {
		t.Fatalf("sections response not JSON: %v\n%s", err, body)
	}
	if secs.Experiment != "conv" || secs.Ranks != 4 || secs.Running ||
		secs.TraceID != run.TraceID || secs.Wall != run.Wall {
		t.Fatalf("sections header inconsistent with run: %s", body)
	}
	if len(secs.Sections) == 0 {
		t.Fatal("no sections reported")
	}
	sawBound := false
	for _, s := range secs.Sections {
		if s.Bound > 0 {
			sawBound = true
		}
	}
	if !sawBound {
		t.Error("no Eq. 6 partial bound in /sections despite seq baseline")
	}

	code, body = get(t, h, "/trace.json")
	if code != http.StatusOK {
		t.Fatalf("trace: code %d", code)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   struct {
			TraceID string `json:"trace_id"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 || trace.OtherData.TraceID != run.TraceID {
		t.Fatalf("trace inconsistent: %d events, id %q", len(trace.TraceEvents), trace.OtherData.TraceID)
	}

	code, body = get(t, h, "/spans.json")
	if code != http.StatusOK {
		t.Fatalf("spans: code %d", code)
	}
	var otlp struct {
		ResourceSpans []json.RawMessage `json:"resourceSpans"`
	}
	if err := json.Unmarshal([]byte(body), &otlp); err != nil {
		t.Fatalf("spans not JSON: %v", err)
	}
	if len(otlp.ResourceSpans) != 4 {
		t.Fatalf("spans: %d resources, want one per rank (4)", len(otlp.ResourceSpans))
	}
}
