package main

import (
	"net/http"

	"repro/internal/pop"
)

// /efficiency.json serves the POP multiplicative efficiency tree of the
// current run (internal/pop): per-section and run-level Load Balance /
// Transfer / Serialisation factors, the hybrid MPI+OpenMP split when the
// run recorded thread-team regions, a short time-resolved series, and the
// one-line diagnosis joining the Eq. 6 binding section with its dominant
// factor. Like the wait-state endpoints it replays the recorded stream on
// demand and works mid-run on the partial trace. Faulted runs report
// degraded=true with every factor object null.

// efficiencyIntervals is the fixed time-resolved grid the endpoint serves;
// finer grids belong to the offline tool (secanalyze -pop -intervals N).
const efficiencyIntervals = 8

// efficiencyResponse is the /efficiency.json document.
type efficiencyResponse struct {
	Experiment string `json:"experiment"`
	Running    bool   `json:"running"`
	*pop.Tree
}

// popTree snapshots the current run's events and builds the efficiency
// tree. The returned state is non-nil iff a run exists.
func (s *server) popTree() (*runState, *pop.Tree, error) {
	st := s.snapshot()
	if st == nil || st.collector == nil {
		return st, nil, nil
	}
	s.mu.Lock()
	seq := st.seq
	s.mu.Unlock()
	t, err := pop.Analyze(st.collector.Buffer().Events(),
		pop.Options{SeqTime: seq, Intervals: efficiencyIntervals})
	return st, t, err
}

func (s *server) handleEfficiency(w http.ResponseWriter, req *http.Request) {
	st, t, err := s.popTree()
	if st == nil {
		http.Error(w, "no run yet: GET /run?exp=conv&p=64 first", http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, "no events recorded yet: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	s.mu.Lock()
	resp := efficiencyResponse{Experiment: st.opts.Experiment, Running: st.running, Tree: t}
	s.mu.Unlock()
	writeJSON(w, resp)
}
