package main

import (
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"
)

// efficiencyDoc mirrors the /efficiency.json document shape the dashboard
// consumes; factor objects are pointers so a degraded run's JSON null is
// distinguishable from zeros.
type efficiencyDoc struct {
	Experiment string `json:"experiment"`
	Running    bool   `json:"running"`
	Ranks      int    `json:"ranks"`
	Degraded   bool   `json:"degraded"`
	Diagnosis  string `json:"diagnosis"`
	Global     *struct {
		Factors *effFactors `json:"factors"`
	} `json:"global"`
	Binding *struct {
		Section string      `json:"section"`
		Factors *effFactors `json:"factors"`
	} `json:"binding"`
	Sections []struct {
		Section string      `json:"section"`
		Factors *effFactors `json:"factors"`
	} `json:"sections"`
	Intervals []struct {
		Factors *effFactors `json:"factors"`
	} `json:"intervals"`
}

type effFactors struct {
	Parallel      float64 `json:"parallel"`
	LoadBalance   float64 `json:"load_balance"`
	Comm          float64 `json:"communication"`
	Transfer      float64 `json:"transfer"`
	Serialisation float64 `json:"serialisation"`
}

func getEfficiency(t *testing.T, h http.Handler) efficiencyDoc {
	t.Helper()
	code, body := get(t, h, "/efficiency.json")
	if code != http.StatusOK {
		t.Fatalf("/efficiency.json: code %d body %q", code, body)
	}
	var doc efficiencyDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/efficiency.json not JSON: %v\n%s", err, body)
	}
	return doc
}

// TestEfficiencyEndpoint runs a clean experiment and checks the POP tree
// the endpoint serves: a binding section with a complete factor tree whose
// leaves multiply to the parallel efficiency, plus the matching
// section_efficiency_* gauges on /metrics.
func TestEfficiencyEndpoint(t *testing.T) {
	h := testHandler()
	code, body := get(t, h, "/run?exp=conv&p=4&steps=6&scale=32&seed=2017&wait=1&seq=5")
	if code != http.StatusOK {
		t.Fatalf("run: code %d body %q", code, body)
	}

	doc := getEfficiency(t, h)
	if doc.Degraded {
		t.Fatal("clean run reported degraded")
	}
	if doc.Ranks != 4 || doc.Experiment != "conv" {
		t.Fatalf("header wrong: %+v", doc)
	}
	if doc.Binding == nil || doc.Binding.Factors == nil {
		t.Fatal("no binding record on a clean run")
	}
	if !strings.Contains(doc.Diagnosis, "binds at p=4:") {
		t.Errorf("diagnosis = %q, want the binding join", doc.Diagnosis)
	}
	if doc.Global == nil || doc.Global.Factors == nil {
		t.Fatal("no global factor tree")
	}
	if len(doc.Intervals) == 0 {
		t.Error("no time-resolved intervals")
	}
	check := func(scope string, f *effFactors) {
		if f == nil {
			t.Errorf("%s: null factors on a clean run", scope)
			return
		}
		if math.Abs(f.Parallel-f.LoadBalance*f.Comm) > 1e-9 {
			t.Errorf("%s: parallel %v != load_balance %v x comm %v", scope, f.Parallel, f.LoadBalance, f.Comm)
		}
		if math.Abs(f.Comm-f.Transfer*f.Serialisation) > 1e-9 {
			t.Errorf("%s: comm %v != transfer %v x serialisation %v", scope, f.Comm, f.Transfer, f.Serialisation)
		}
	}
	check("(run)", doc.Global.Factors)
	check("binding", doc.Binding.Factors)
	for _, se := range doc.Sections {
		check(se.Section, se.Factors)
	}

	code, body = get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: code %d", code)
	}
	for _, want := range []string{
		"section_efficiency_degraded 0",
		"section_efficiency_parallel{section=",
		"section_efficiency_binding{section=",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics lack %q", want)
		}
	}
}

// TestEfficiencyEndpointFaultedRun: injected faults degrade the document —
// degraded=true and every factor object null — and /metrics withholds the
// per-section samples while flagging the degradation.
func TestEfficiencyEndpointFaultedRun(t *testing.T) {
	h := testHandler()
	code, body := get(t, h,
		"/run?exp=conv&p=4&steps=6&scale=32&seed=2017&wait=1&seq=0"+
			"&fault=delay:src=*,dst=*,prob=1,secs=1e-6&fault-seed=9&deadline=30s")
	if code != http.StatusOK {
		t.Fatalf("faulty run: code %d body %q", code, body)
	}

	doc := getEfficiency(t, h)
	if !doc.Degraded {
		t.Fatal("faulted run not marked degraded")
	}
	if doc.Global != nil && doc.Global.Factors != nil {
		t.Error("global factors present on a degraded run")
	}
	for _, se := range doc.Sections {
		if se.Factors != nil {
			t.Errorf("section %s: factors present on a degraded run", se.Section)
		}
	}
	if doc.Binding != nil && doc.Binding.Factors != nil {
		t.Error("binding factors present on a degraded run")
	}
	if !strings.Contains(doc.Diagnosis, "degraded run") {
		t.Errorf("diagnosis = %q, want the degraded verdict", doc.Diagnosis)
	}

	code, body = get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: code %d", code)
	}
	if !strings.Contains(body, "section_efficiency_degraded 1") {
		t.Error("metrics lack the degraded flag")
	}
	if strings.Contains(body, "section_efficiency_parallel{section=") {
		t.Error("metrics leak per-section efficiency samples on a degraded run")
	}
}
