package main

import (
	"encoding/json"
	"net/http"

	"repro/internal/trace"
	"repro/internal/waitstate"
)

// The wait-state endpoints replay the run's recorded event stream through
// internal/waitstate on demand: /waitstate.json answers WHY the binding
// section caps the speedup (per-section wait classification, per-rank
// accounting, collective stats) and /critpath.json serves the critical
// path through the happens-before graph. Both work mid-run on the partial
// stream recorded so far.

// collectorLimit caps the monitor's trace buffer; past it the analysis
// carries the truncation warning instead of growing without bound.
const collectorLimit = 4 << 20

// newAnalysisCollector records everything the wait-state engine consumes.
func newAnalysisCollector() *trace.Collector {
	c := trace.NewCollector(collectorLimit)
	c.Messages = true
	c.Collectives = true
	// Thread-team compute regions feed /efficiency.json's hybrid split;
	// pure-MPI experiments record none, so the flag costs them nothing.
	c.Omp = true
	return c
}

// analyze snapshots the current run's events and runs the engine. The
// returned state is non-nil iff a run exists.
func (s *server) analyze() (*runState, *waitstate.Analysis, error) {
	st := s.snapshot()
	if st == nil || st.collector == nil {
		return st, nil, nil
	}
	s.mu.Lock()
	seq := st.seq
	s.mu.Unlock()
	a, err := waitstate.Analyze(st.collector.Buffer().Events(), waitstate.Options{SeqTime: seq})
	return st, a, err
}

// waitstateResponse is the /waitstate.json document: the full analysis
// minus the path segments (those live on /critpath.json), plus the binding
// verdict.
type waitstateResponse struct {
	Experiment string `json:"experiment"`
	Running    bool   `json:"running"`
	// Binding is the section with the largest average per-process time —
	// the Eq. 6 bound holder — with its dominant wait-state cause.
	Binding *waitstate.SectionDiagnosis `json:"binding,omitempty"`
	*waitstate.Analysis
}

func (s *server) handleWaitstate(w http.ResponseWriter, req *http.Request) {
	st, a, err := s.analyze()
	if st == nil {
		http.Error(w, "no run yet: GET /run?exp=conv&p=64 first", http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, "no events recorded yet: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	s.mu.Lock()
	resp := waitstateResponse{Experiment: st.opts.Experiment, Running: st.running, Analysis: a}
	s.mu.Unlock()
	resp.Binding = a.Binding()
	resp.CritPath = nil
	writeJSON(w, resp)
}

// critpathResponse is the /critpath.json document.
type critpathResponse struct {
	Experiment string  `json:"experiment"`
	Running    bool    `json:"running"`
	Ranks      int     `json:"ranks"`
	Wall       float64 `json:"wall_seconds"`
	// CritLen is the summed segment length; Coverage its share of the wall
	// (1.0 when the stream includes the section events).
	CritLen  float64 `json:"crit_len_seconds"`
	Coverage float64 `json:"coverage"`
	// PerSection maps each section to its time on the path and share of it.
	PerSection []critpathSection       `json:"per_section"`
	Segments   []waitstate.PathSegment `json:"segments"`
	Warning    string                  `json:"warning,omitempty"`
}

type critpathSection struct {
	Section string  `json:"section"`
	Seconds float64 `json:"crit_seconds"`
	Share   float64 `json:"crit_share"`
}

func (s *server) handleCritpath(w http.ResponseWriter, req *http.Request) {
	st, a, err := s.analyze()
	if st == nil {
		http.Error(w, "no run yet: GET /run?exp=conv&p=64 first", http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, "no events recorded yet: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	s.mu.Lock()
	resp := critpathResponse{
		Experiment: st.opts.Experiment, Running: st.running,
		Ranks: a.Ranks, Wall: a.Wall, CritLen: a.CritLen,
		Segments: a.CritPath, Warning: a.Warning,
	}
	s.mu.Unlock()
	if a.Wall > 0 {
		resp.Coverage = a.CritLen / a.Wall
	}
	for _, d := range a.Sections {
		if d.CritTime > 0 {
			resp.PerSection = append(resp.PerSection, critpathSection{
				Section: d.Section, Seconds: d.CritTime, Share: d.CritShare,
			})
		}
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		logf("json write: %v", err)
	}
}
