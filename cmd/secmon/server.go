package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/prof"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/verify"
)

// rankGauges captures the runtime's live session gauges at Init so
// /metrics can report rank bring-up while the ranks are still executing.
// On a lazy run (exp=conv2d, or any session workload) the materialized
// gauge climbs from 0 toward the active count; a large gap between
// declared and materialized is exactly the "10k declared ranks without 10k
// pre-allocated states" property the sharded runtime provides.
type rankGauges struct {
	mpi.BaseTool
	mu    sync.Mutex
	stats *mpi.RuntimeStats
}

func (g *rankGauges) Init(w *mpi.WorldInfo) {
	g.mu.Lock()
	g.stats = w.Stats
	g.mu.Unlock()
}

// write emits the Prometheus gauge family; a scrape before the first run's
// Init (or against a runState assembled without a tool chain) emits
// nothing.
func (g *rankGauges) write(w io.Writer) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	stats := g.stats
	g.mu.Unlock()
	if stats == nil {
		return nil
	}
	_, err := fmt.Fprintf(w,
		"# HELP mpi_ranks_declared Configured world size of the current run.\n"+
			"# TYPE mpi_ranks_declared gauge\nmpi_ranks_declared %d\n"+
			"# HELP mpi_ranks_active Ranks participating in the session.\n"+
			"# TYPE mpi_ranks_active gauge\nmpi_ranks_active %d\n"+
			"# HELP mpi_ranks_materialized Active ranks whose state the runtime has brought up so far.\n"+
			"# TYPE mpi_ranks_materialized gauge\nmpi_ranks_materialized %d\n",
		stats.DeclaredRanks(), stats.ActiveRanks(), stats.MaterializedRanks())
	return err
}

// runState is one launched (possibly still executing) experiment run.
type runState struct {
	opts      experiments.LiveOptions
	rec       *export.Recorder
	profiler  *prof.Profiler
	collector *trace.Collector
	verifier  *verify.Tool // non-nil when launched with verify=1
	gauges    *rankGauges
	tele      *telemetry.Tool
	seq       float64
	running   bool
	err       error
	wall      float64
	started   time.Time
	finished  time.Time
}

// server multiplexes the monitor endpoints over the most recent run. The
// recorder is a live streaming aggregator: /metrics and /sections answer
// from it while the ranks are still executing.
type server struct {
	mu  sync.Mutex
	cur *runState
}

func newServer() *server { return &server{} }

// handler wires the endpoint set.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/sections", s.handleSections)
	mux.HandleFunc("/trace.json", s.handleTrace)
	mux.HandleFunc("/spans.json", s.handleSpans)
	mux.HandleFunc("/waitstate.json", s.handleWaitstate)
	mux.HandleFunc("/critpath.json", s.handleCritpath)
	mux.HandleFunc("/efficiency.json", s.handleEfficiency)
	mux.HandleFunc("/faults.json", s.handleFaults)
	mux.HandleFunc("/verify.json", s.handleVerify)
	mux.HandleFunc("/profile.json", s.handleProfile)
	mux.HandleFunc("/heatmap.csv", s.handleHeatmap)
	mux.HandleFunc("/run", s.handleRun)
	// Runtime profiling of the monitor process itself: with a sweep running
	// behind /run, `go tool pprof http://.../debug/pprof/profile` lands in
	// the same simulation hot paths the bench binaries' -cpuprofile covers.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	return mux
}

// snapshot returns the current run (nil before the first /run).
func (s *server) snapshot() *runState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

func (s *server) handleIndex(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path != "/" {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!doctype html><title>secmon</title>
<h1>MPI section monitor</h1>
<p>Live observability over the paper's MPI_Section tool chain.</p>
<ul>
<li><a href="/metrics">/metrics</a> — Prometheus text exposition (scrape while running)</li>
<li><a href="/sections">/sections</a> — JSON aggregates: Fig. 3 metrics and Eq. 6 partial bounds</li>
<li><a href="/trace.json">/trace.json</a> — Chrome trace_event JSON (open in Perfetto / chrome://tracing)</li>
<li><a href="/spans.json">/spans.json</a> — OTLP-style span export</li>
<li><a href="/waitstate.json">/waitstate.json</a> — wait-state diagnosis: why the binding section caps the speedup</li>
<li><a href="/critpath.json">/critpath.json</a> — critical path through the happens-before graph</li>
<li><a href="/efficiency.json">/efficiency.json</a> — POP efficiency tree: load-balance/transfer/serialisation factors joined with the Eq. 6 binding</li>
<li><a href="/profile.json">/profile.json</a> — streaming telemetry snapshot: live Eq. 6 bounds, POP factors, Fig. 3 imbalance, intervals, exemplars (constant memory at any rank count)</li>
<li><a href="/heatmap.csv">/heatmap.csv</a> — bounded rank×time wait heatmap from the same snapshot</li>
<li><a href="/faults.json">/faults.json</a> — injected faults and failure consequences of the current run</li>
<li><a href="/verify.json">/verify.json</a> — runtime verifier report (section nesting, enter counts, collective order)</li>
<li><a href="/run?exp=conv&amp;p=64">/run?exp=conv&amp;p=64</a> — launch an experiment with the exporter attached
    (params: exp=conv|conv2d|lulesh, p, steps, scale, seed, threads, wait=1, seq=0, verify=1,
    fault=kill:rank=2,after=100, fault-seed=N, deadline=30s; repeat fault= for multi-rule plans;
    exp=conv2d runs the lazy extreme-scale session — p=10000 resolves in seconds)</li>
</ul>`)
}

func (s *server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := s.snapshot()
	fmt.Fprint(w, "# HELP secmon_up Monitor process liveness.\n# TYPE secmon_up gauge\nsecmon_up 1\n")
	if st == nil {
		return
	}
	if err := st.gauges.write(w); err != nil {
		logf("metrics write: %v", err)
		return
	}
	if err := st.rec.WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is log.
		logf("metrics write: %v", err)
		return
	}
	if st.verifier != nil {
		if err := export.WriteVerifyPrometheus(w, st.verifier.Counts()); err != nil {
			logf("metrics write: %v", err)
		}
	}
	// Streaming telemetry families: bounded-cardinality per-section series
	// straight from the constant-memory accumulators — no trace replay, so
	// this scales to the 10k-rank session runs.
	if st.tele != nil {
		if err := st.tele.WritePrometheus(w, telemetry.PromOptions{}); err != nil {
			logf("metrics write: %v", err)
		}
	}
	// POP efficiency gauges: replay the recorded stream on demand, like the
	// wait-state endpoints. An empty stream (scrape before the first event)
	// simply omits the families.
	if _, t, err := s.popTree(); err == nil && t != nil {
		if err := export.WriteEfficiencyPrometheus(w, t); err != nil {
			logf("metrics write: %v", err)
		}
	}
}

// verifyResponse is the /verify.json document.
type verifyResponse struct {
	TraceID string `json:"trace_id"`
	Running bool   `json:"running"`
	// Enabled reports whether the run was launched with verify=1; the
	// remaining fields are meaningful only when it was.
	Enabled    bool               `json:"enabled"`
	OK         bool               `json:"ok"`
	Counts     map[string]uint64  `json:"counts"`
	Violations []verify.Violation `json:"violations"`
}

// handleVerify serves the runtime verifier's report — live while the ranks
// are still executing, final once the run ends.
func (s *server) handleVerify(w http.ResponseWriter, req *http.Request) {
	st := s.snapshot()
	if st == nil {
		http.Error(w, "no run yet: GET /run?exp=conv&p=4&verify=1 first", http.StatusNotFound)
		return
	}
	s.mu.Lock()
	resp := verifyResponse{Running: st.running, Enabled: st.verifier != nil, OK: true,
		Counts: map[string]uint64{}, Violations: []verify.Violation{}}
	s.mu.Unlock()
	resp.TraceID = st.rec.TraceID().String()
	if st.verifier != nil {
		resp.OK = st.verifier.OK()
		resp.Counts = st.verifier.Counts()
		resp.Violations = st.verifier.Violations()
		if resp.Violations == nil {
			resp.Violations = []verify.Violation{}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		logf("verify write: %v", err)
	}
}

// sectionsResponse is the /sections JSON document.
type sectionsResponse struct {
	Experiment string                   `json:"experiment"`
	Ranks      int                      `json:"ranks"`
	Steps      int                      `json:"steps"`
	Scale      int                      `json:"scale"`
	Seed       uint64                   `json:"seed"`
	TraceID    string                   `json:"trace_id"`
	Running    bool                     `json:"running"`
	Error      string                   `json:"error,omitempty"`
	WallTime   float64                  `json:"wall_seconds"`
	Dropped    int                      `json:"dropped_events"`
	Warning    string                   `json:"warning,omitempty"`
	Sections   []export.SectionSnapshot `json:"sections"`
}

func (s *server) handleSections(w http.ResponseWriter, req *http.Request) {
	st := s.snapshot()
	if st == nil {
		http.Error(w, "no run yet: POST or GET /run?exp=conv&p=64 first", http.StatusNotFound)
		return
	}
	s.mu.Lock()
	resp := sectionsResponse{
		Experiment: st.opts.Experiment,
		Ranks:      st.opts.Ranks,
		Steps:      st.opts.Steps,
		Scale:      st.opts.Scale,
		Seed:       st.opts.Seed,
		Running:    st.running,
		WallTime:   st.wall,
	}
	if st.err != nil {
		resp.Error = mpi.RootCause(st.err).Error()
	}
	s.mu.Unlock()
	resp.TraceID = st.rec.TraceID().String()
	if resp.Running {
		resp.WallTime = st.rec.WallTime()
	}
	resp.Dropped = st.rec.Dropped()
	resp.Warning = st.rec.Warning()
	resp.Sections = st.rec.Sections()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		logf("sections write: %v", err)
	}
}

func (s *server) handleTrace(w http.ResponseWriter, req *http.Request) {
	st := s.snapshot()
	if st == nil {
		http.Error(w, "no run yet: GET /run?exp=conv&p=64 first", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
	if err := st.rec.WriteChromeTrace(w); err != nil {
		logf("trace write: %v", err)
	}
}

func (s *server) handleSpans(w http.ResponseWriter, req *http.Request) {
	st := s.snapshot()
	if st == nil {
		http.Error(w, "no run yet: GET /run?exp=conv&p=64 first", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="spans.json"`)
	if err := st.rec.WriteOTLP(w); err != nil {
		logf("spans write: %v", err)
	}
}

// faultsResponse is the /faults.json document.
type faultsResponse struct {
	TraceID string `json:"trace_id"`
	Running bool   `json:"running"`
	// Plan is the armed fault spec ("" for a healthy run).
	Plan string `json:"plan,omitempty"`
	Seed uint64 `json:"seed,omitempty"`
	// Counts aggregates events per (section, kind); Events is the full
	// canonically ordered log.
	Counts []export.FaultCount `json:"counts"`
	Events []fault.Event       `json:"events"`
}

// handleFaults serves the current run's fault log — injected events plus
// observed consequences — live while the ranks are still executing.
func (s *server) handleFaults(w http.ResponseWriter, req *http.Request) {
	st := s.snapshot()
	if st == nil {
		http.Error(w, "no run yet: GET /run?exp=conv&p=4&fault=kill:rank=2,after=100 first", http.StatusNotFound)
		return
	}
	s.mu.Lock()
	resp := faultsResponse{Running: st.running}
	if st.opts.Fault != nil {
		resp.Plan = st.opts.Fault.String()
		resp.Seed = st.opts.Fault.Seed
	}
	s.mu.Unlock()
	resp.TraceID = st.rec.TraceID().String()
	resp.Counts = st.rec.FaultCounts()
	resp.Events = st.rec.Faults()
	if resp.Events == nil {
		resp.Events = []fault.Event{}
	}
	if resp.Counts == nil {
		resp.Counts = []export.FaultCount{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		logf("faults write: %v", err)
	}
}

// handleProfile serves the streaming telemetry snapshot — consistent at any
// moment, including mid-run: the constant-memory accumulators are read
// live, no trace replay involved.
func (s *server) handleProfile(w http.ResponseWriter, req *http.Request) {
	st := s.snapshot()
	if st == nil || st.tele == nil {
		http.Error(w, "no run yet: GET /run?exp=conv&p=4 first", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := st.tele.Snapshot().WriteJSON(w); err != nil {
		logf("profile write: %v", err)
	}
}

// handleHeatmap serves the bounded rank×time wait heatmap as CSV.
func (s *server) handleHeatmap(w http.ResponseWriter, req *http.Request) {
	st := s.snapshot()
	if st == nil || st.tele == nil {
		http.Error(w, "no run yet: GET /run?exp=conv&p=4 first", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.Header().Set("Content-Disposition", `attachment; filename="heatmap.csv"`)
	if err := st.tele.Snapshot().WriteHeatmapCSV(w); err != nil {
		logf("heatmap write: %v", err)
	}
}

// queryInt parses an integer query parameter with a default.
func queryInt(req *http.Request, key string, def int) (int, error) {
	v := req.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not an integer", key, v)
	}
	return n, nil
}

// handleRun launches an experiment with the exporter (and the reference
// profiler, proving the chained interception composes) attached. The run
// executes on a background goroutine; pass wait=1 to block until done.
func (s *server) handleRun(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	opts := experiments.LiveOptions{Experiment: q.Get("exp")}
	var err error
	if opts.Ranks, err = queryInt(req, "p", 4); err == nil {
		if opts.Steps, err = queryInt(req, "steps", 0); err == nil {
			if opts.Scale, err = queryInt(req, "scale", 0); err == nil {
				opts.Threads, err = queryInt(req, "threads", 0)
			}
		}
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if seed := q.Get("seed"); seed != "" {
		v, err := strconv.ParseUint(seed, 10, 64)
		if err != nil {
			http.Error(w, "parameter seed is not an unsigned integer", http.StatusBadRequest)
			return
		}
		opts.Seed = v
	}
	// Fault knobs: a spec (internal/fault syntax) arms deterministic
	// injection in the launched run; the deadline arms the deadlock
	// detector so a degraded run ends in a per-rank blocked report.
	// Go's query parser rejects the spec's `;` rule separator outright, so
	// multi-rule plans ride as repeated fault= parameters (one rule each)
	// and are rejoined here.
	if spec := strings.Join(q["fault"], ";"); spec != "" {
		seed := uint64(1)
		if v := q.Get("fault-seed"); v != "" {
			if seed, err = strconv.ParseUint(v, 10, 64); err != nil {
				http.Error(w, "parameter fault-seed is not an unsigned integer", http.StatusBadRequest)
				return
			}
		}
		if opts.Fault, err = fault.ParseSpec(spec, seed); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	if v := q.Get("deadline"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			http.Error(w, "parameter deadline is not a positive duration", http.StatusBadRequest)
			return
		}
		opts.Deadline = d
	}
	withSeq := q.Get("seq") != "0"
	wait := q.Get("wait") == "1"
	// Resolve defaults up front: requests with an unknown experiment or
	// rank count fail here with a 400, and the state reported by /sections
	// is the configuration that actually ran, not the raw query.
	if opts, err = opts.Resolved(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	rec := export.NewRecorder(export.Options{Messages: true, Collectives: true})
	profiler := prof.New()
	collector := newAnalysisCollector()
	gauges := &rankGauges{}
	tele := telemetry.New(telemetry.Options{})
	opts.Tools = []mpi.Tool{profiler, rec, collector, gauges, tele}
	var verifier *verify.Tool
	if q.Get("verify") == "1" {
		verifier = verify.New()
		opts.Tools = append(opts.Tools, verifier)
	}

	s.mu.Lock()
	if s.cur != nil && s.cur.running {
		s.mu.Unlock()
		http.Error(w, "a run is already in progress", http.StatusConflict)
		return
	}
	st := &runState{opts: opts, rec: rec, profiler: profiler, collector: collector, verifier: verifier, gauges: gauges, tele: tele, running: true, started: time.Now()}
	s.cur = st
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		var seq float64
		var runErr error
		if withSeq {
			if seq, runErr = experiments.SeqBaseline(opts); runErr == nil && seq > 0 {
				rec.SetSeqTime(seq)
				tele.SetSeqTime(seq)
				s.mu.Lock()
				st.seq = seq
				s.mu.Unlock()
			}
		}
		var rep *mpi.Report
		if runErr == nil {
			rep, runErr = experiments.RunLive(opts)
		}
		s.mu.Lock()
		st.running = false
		st.err = runErr
		st.finished = time.Now()
		if rep != nil {
			st.wall = rep.WallTime
		}
		s.mu.Unlock()
		if runErr != nil {
			logf("run %s p=%d failed: %v", opts.Experiment, opts.Ranks, runErr)
		} else {
			logf("run %s p=%d done: wall %.6gs (real %v)",
				opts.Experiment, opts.Ranks, st.wall, st.finished.Sub(st.started).Round(time.Millisecond))
		}
	}()
	if wait {
		<-done
	}

	s.mu.Lock()
	resp := map[string]any{
		"status":   map[bool]string{true: "running", false: "finished"}[st.running],
		"exp":      opts.Experiment,
		"p":        opts.Ranks,
		"steps":    opts.Steps,
		"scale":    opts.Scale,
		"seed":     opts.Seed,
		"trace_id": rec.TraceID().String(),
	}
	if opts.Fault != nil {
		resp["fault"] = opts.Fault.String()
	}
	if !st.running {
		resp["wall_seconds"] = st.wall
		if verifier != nil {
			resp["verify_ok"] = verifier.OK()
			resp["verify_violations"] = len(verifier.Violations())
		}
		if st.err != nil {
			// The raw error tree leads with whichever secondary victim
			// happened to be collected first; distill the primary cause (an
			// injected kill outranks the revocations it provokes).
			resp["error"] = mpi.RootCause(st.err).Error()
		}
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		logf("run response write: %v", err)
	}
}
