// Command secmon is the multi-tenant sweep service over the section tool
// chain: every /run is admitted into a bounded fair queue, executed with
// the streaming exporter attached, retried on injected rank faults, and
// cached — all observable while the ranks are still executing through
// Prometheus metrics, JSON aggregates, a Perfetto-loadable Chrome trace
// and OTLP-style spans.
//
// Usage:
//
//	secmon -addr :8080
//	curl 'http://localhost:8080/run?exp=conv&p=64'                # 202 + job id
//	curl 'http://localhost:8080/run?exp=conv&p=8&fault=kill:rank=2,after=100&wait=1'
//	curl http://localhost:8080/jobs
//	curl http://localhost:8080/metrics
//	curl http://localhost:8080/faults.json
//	curl -O http://localhost:8080/trace.json   # open in ui.perfetto.dev
//
// SIGINT/SIGTERM shut the service down gracefully: admission stops,
// queued and running jobs finish or are cancelled within -drain, the
// result cache is persisted to -cache-dir, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/sched"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	jobs := flag.Int("j", 0, "simulation worker parallelism (0 = GOMAXPROCS)")
	tenants := flag.Int("tenants", 0, "distinct tenants admitted concurrently (0 = default 8)")
	queueDepth := flag.Int("queue-depth", 0, "queued jobs per tenant before shedding (0 = default 16)")
	maxInflight := flag.Int("max-inflight", 0, "concurrently running jobs (0 = worker count)")
	retries := flag.Int("retries", 0, "extra attempts for fault-killed jobs (0 = default 2, negative disables)")
	cacheEntries := flag.Int("cache-entries", 0, "result-cache capacity (0 = default 256, negative disables)")
	cacheDir := flag.String("cache-dir", "", "persist the result cache here on drain and reload it on start")
	compat := flag.Bool("compat", false, "pre-queue /run behavior: synchronous single flight, 409 while busy")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown budget for queued and running jobs")
	flag.Parse()

	sched.SetParallelism(*jobs)
	svc := serve.NewService(serve.Options{
		Tenants:      *tenants,
		QueueDepth:   *queueDepth,
		MaxInflight:  *maxInflight,
		Retries:      *retries,
		CacheEntries: *cacheEntries,
		CacheDir:     *cacheDir,
		Observe:      true,
	})
	srv := &http.Server{Addr: *addr, Handler: serve.NewHandler(svc, serve.HandlerOptions{Compat: *compat})}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("secmon listening on http://%s (try /run?exp=conv&p=64 then /jobs and /metrics)", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// Listen failed before any signal (port in use, bad address).
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default handling: a second signal kills immediately
		log.Printf("signal received; draining jobs for up to %v", *drain)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := svc.Drain(drainCtx); err != nil {
			log.Printf("drain: %v", err)
		}
		cancel()
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
		log.Printf("secmon stopped")
	}
}
