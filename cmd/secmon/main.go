// Command secmon serves live observability over the section tool chain:
// launch an experiment with the streaming exporter attached and watch it
// through Prometheus metrics, JSON aggregates, a Perfetto-loadable Chrome
// trace and OTLP-style spans — all while the ranks are still executing.
//
// Usage:
//
//	secmon -addr :8080
//	curl 'http://localhost:8080/run?exp=conv&p=64'
//	curl http://localhost:8080/metrics
//	curl -O http://localhost:8080/trace.json   # open in ui.perfetto.dev
package main

import (
	"flag"
	"log"
	"net/http"

	"repro/internal/sched"
)

func logf(format string, args ...any) { log.Printf(format, args...) }

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	jobs := flag.Int("j", 0, "concurrent experiment runs admitted by /run (0 = GOMAXPROCS)")
	flag.Parse()

	sched.SetParallelism(*jobs)
	s := newServer()
	log.Printf("secmon listening on http://%s (try /run?exp=conv&p=64 then /metrics)", *addr)
	log.Fatal(http.ListenAndServe(*addr, s.handler()))
}
