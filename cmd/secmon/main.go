// Command secmon serves live observability over the section tool chain:
// launch an experiment with the streaming exporter attached and watch it
// through Prometheus metrics, JSON aggregates, a Perfetto-loadable Chrome
// trace and OTLP-style spans — all while the ranks are still executing.
//
// Usage:
//
//	secmon -addr :8080
//	curl 'http://localhost:8080/run?exp=conv&p=64'
//	curl 'http://localhost:8080/run?exp=conv&p=8&fault=kill:rank=2,after=100&wait=1'
//	curl http://localhost:8080/metrics
//	curl http://localhost:8080/faults.json
//	curl -O http://localhost:8080/trace.json   # open in ui.perfetto.dev
//
// SIGINT/SIGTERM shut the monitor down gracefully: in-flight responses
// drain (bounded by -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/sched"
)

func logf(format string, args ...any) { log.Printf(format, args...) }

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	jobs := flag.Int("j", 0, "concurrent experiment runs admitted by /run (0 = GOMAXPROCS)")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout for in-flight responses")
	flag.Parse()

	sched.SetParallelism(*jobs)
	s := newServer()
	srv := &http.Server{Addr: *addr, Handler: s.handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("secmon listening on http://%s (try /run?exp=conv&p=64 then /metrics)", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// Listen failed before any signal (port in use, bad address).
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default handling: a second signal kills immediately
		log.Printf("signal received; draining for up to %v", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
		log.Printf("secmon stopped")
	}
}
