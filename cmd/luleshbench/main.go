// Command luleshbench regenerates the paper's LULESH MPI+OpenMP experiment
// (§5.2): the Fig. 7 configuration table and the Figs. 8–10 scaling series
// on the modeled dual-Broadwell and KNL machines.
//
// Usage:
//
//	luleshbench [-fig 7|8|9|10|all] [-quick] [-steps N] [-seed N]
//	            [-out results] [-csv out.csv] [-profile prof.json]
//	            [-j N] [-verify]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With -profile the constant-memory streaming telemetry tool rides along on
// every KNL sweep cell; the deepest completed cell's summary is written as
// JSON and its binding diagnosis printed.
//
// With -verify the runtime section/collective verifier rides along on every
// run and the command exits nonzero if any contract violation is detected.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/balance"
	"repro/internal/diag"
	"repro/internal/experiments"
	"repro/internal/lulesh"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/prof"
	"repro/internal/verify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("luleshbench: ")
	fig := flag.String("fig", "all", "figure to print: 7, 8, 9, 10 or all")
	quick := flag.Bool("quick", false, "reduced sweep")
	steps := flag.Int("steps", 0, "override timesteps per run")
	seed := flag.Uint64("seed", 0, "override seed")
	csvPath := flag.String("csv", "", "also write the KNL sweep as CSV")
	profilePath := flag.String("profile", "", "attach streaming telemetry to the KNL sweep and write the deepest cell's profile summary (JSON) to this file")
	outDir := flag.String("out", "", "directory for output artifacts (created if missing; default CWD)")
	plot := flag.Bool("plot", false, "also draw ASCII charts for the sweeps")
	inspect := flag.Bool("inspect", false, "run one p=8 configuration and print the section tree, load-balance report and communication matrix")
	jobs := flag.Int("j", 0, "concurrent sweep workers (0 = GOMAXPROCS; output is identical for every value)")
	verifyRuns := flag.Bool("verify", false, "attach the runtime section/collective verifier to every run and exit nonzero on violations")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stopProfiles, err := diag.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}

	if *inspect {
		if err := inspectRun(); err != nil {
			log.Fatal(err)
		}
		if err := stopProfiles(); err != nil {
			log.Fatal(err)
		}
		return
	}

	adjust := func(o experiments.HybridOptions) experiments.HybridOptions {
		if *quick {
			o.Threads = []int{1, 2, 4, 8, 24, 64}
			o.Steps = 3
		}
		if *steps > 0 {
			o.Steps = *steps
		}
		if *seed != 0 {
			o.Seed = *seed
		}
		o.Jobs = *jobs
		o.Verify = *verifyRuns
		return o
	}
	var violations []verify.Violation

	needBW := *fig == "8" || *fig == "all"
	needKNL := *fig == "9" || *fig == "10" || *fig == "all" || *csvPath != "" || *profilePath != ""

	if *fig == "7" || *fig == "all" {
		fmt.Println(experiments.Fig7())
	}

	if needBW {
		o := adjust(experiments.PaperBroadwellOptions())
		res, err := experiments.RunHybrid(o)
		if err != nil {
			log.Fatal(err)
		}
		violations = append(violations, res.Verify...)
		fmt.Println(res.ScalingTable(
			"Fig 8 — Lulesh MPI Sections on a dual Broadwell machine (avg time per process, s)"))
		if *plot {
			out, err := res.PlotWalltimes("Fig 8 — dual Broadwell walltimes")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(out)
		}
	}

	if needKNL {
		o := adjust(experiments.PaperKNLOptions())
		o.Profile = *profilePath != ""
		res, err := experiments.RunHybrid(o)
		if err != nil {
			log.Fatal(err)
		}
		violations = append(violations, res.Verify...)
		if *fig == "9" || *fig == "all" {
			fmt.Println(res.ScalingTable(
				"Fig 9 — Lulesh MPI Sections on an Intel KNL (avg time per process, s)"))
			if *plot {
				out, err := res.PlotWalltimes("Fig 9 — KNL walltimes")
				if err != nil {
					log.Fatal(err)
				}
				fmt.Println(out)
			}
		}
		if *fig == "10" || *fig == "all" {
			a, err := res.AnalyzeFig10()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(a.Render())
			if *plot {
				out, err := a.Plot()
				if err != nil {
					log.Fatal(err)
				}
				fmt.Println(out)
			}
		}
		if *csvPath != "" {
			path, err := resolveOut(*outDir, *csvPath)
			if err != nil {
				log.Fatal(err)
			}
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := res.WriteCSV(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("KNL sweep written to %s\n", path)
		}
		if *profilePath != "" {
			tp := res.LargestProfile()
			if tp == nil {
				log.Fatal("profile: every profiled cell failed; no summary to write")
			}
			path, err := resolveOut(*outDir, *profilePath)
			if err != nil {
				log.Fatal(err)
			}
			if err := tp.WriteFile(path); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("telemetry: %s\n", tp.Summary())
			fmt.Printf("telemetry summary written to %s\n", path)
		}
	}

	switch *fig {
	case "7", "8", "9", "10", "all":
	default:
		log.Fatalf("unknown figure %q (want 7, 8, 9, 10 or all)", *fig)
	}

	if err := stopProfiles(); err != nil {
		log.Fatal(err)
	}

	if *verifyRuns {
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "verify: "+v.String())
			}
			log.Fatalf("verify: %d violation(s) across the sweep's runs", len(violations))
		}
		fmt.Println("verify: every run satisfied the section and collective contracts")
	}
}

// resolveOut places a relative artifact path inside dir (created on
// demand); absolute paths and an empty dir pass through unchanged.
func resolveOut(dir, name string) (string, error) {
	if dir == "" || filepath.IsAbs(name) {
		return name, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	return filepath.Join(dir, name), nil
}

// inspectRun executes one Table 7 configuration (p=8, s=24, 4 threads) on
// the KNL model with the full tool stack and prints every analysis view
// this repository offers: the section profile, the hierarchy tree, the
// load-balance verdicts and the communication matrix.
func inspectRun() error {
	profiler := prof.New()
	matrix := prof.NewCommMatrix()
	cfg := mpi.Config{
		Ranks:          8,
		ThreadsPerRank: 4,
		Model:          machine.KNL(),
		Seed:           2017,
		Tools:          []mpi.Tool{profiler, matrix},
		CheckSections:  true,
		Timeout:        10 * time.Minute,
	}
	params := lulesh.Params{S: 24, Steps: 10, Threads: 4, Scale: 4, SedovEnergy: 1e4}
	res, err := lulesh.Run(cfg, params)
	if err != nil {
		return err
	}
	profile, err := profiler.Result()
	if err != nil {
		return err
	}
	fmt.Printf("LULESH p=8 s=24 threads=4 on %s: wall %.4g s; mass drift %.3g\n\n",
		cfg.Model.Name, res.Report.WallTime,
		(res.Diag.Mass1-res.Diag.Mass0)/res.Diag.Mass0)
	fmt.Println(profile.Table())
	fmt.Println(profile.WorldTree())
	report, err := balance.Report(profile, 3)
	if err != nil {
		return err
	}
	fmt.Println(report)
	fmt.Println(matrix.Render())
	return nil
}
