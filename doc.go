// Package repro reproduces "Towards a Better Expressiveness of the Speedup
// Metric in MPI Context" (Besnard, Malony, Shende, Pérache, Carribault,
// Jaeger — ICPP Workshops 2017) as a Go library: an in-process MPI runtime
// with virtual-time machine models, the MPI_Section abstraction with its
// PMPI-style tool layer, the partial-speedup-bounding analysis, and the
// paper's two instrumented benchmarks (image convolution and a LULESH
// proxy) with drivers regenerating every table and figure of §5.
//
// The MPI_Section tool layer is open: any mpi.Tool attached through
// mpi.Config.Tools observes section, message and collective events with
// virtual timestamps, chained PMPI-style. internal/export is the worked
// example — a streaming exporter producing Perfetto-loadable Chrome
// trace_event JSON, OTLP-style spans (carrying the 32-byte tool-data
// payload as attributes) and live Prometheus metrics, served by
// cmd/secmon's HTTP monitor. See "Attaching your own tool" in README.md.
//
// Buffer ownership, for tool authors and workloads: message payloads live
// in a size-classed pool. mpi.Comm.Recv (and the Wait on an Irecv request)
// transfers ownership of the returned []byte to the caller — pass it to
// mpi.Release when done to keep the steady state allocation-free, or keep
// it indefinitely (a kept buffer is merely never recycled). Tool hooks
// (MessageSent/MessageRecv) receive metadata only, never the payload, so
// tools are unaffected. Buffers obtained any other way (RecvFloat64s
// results, Allreduce results) are owned by the caller outright and must
// NOT be passed to mpi.Release. Scaled runs may ship "ghost" messages
// that carry a byte count but no payload bytes; Recv materializes a
// zeroed buffer for them, so receivers cannot observe the difference.
//
// See README.md for the tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The root package holds only
// the benchmark harness (bench_test.go); the implementation lives under
// internal/.
package repro
