// Package repro reproduces "Towards a Better Expressiveness of the Speedup
// Metric in MPI Context" (Besnard, Malony, Shende, Pérache, Carribault,
// Jaeger — ICPP Workshops 2017) as a Go library: an in-process MPI runtime
// with virtual-time machine models, the MPI_Section abstraction with its
// PMPI-style tool layer, the partial-speedup-bounding analysis, and the
// paper's two instrumented benchmarks (image convolution and a LULESH
// proxy) with drivers regenerating every table and figure of §5.
//
// See README.md for the tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The root package holds only
// the benchmark harness (bench_test.go); the implementation lives under
// internal/.
package repro
