package repro

// Cross-module integration tests: each exercises a full pipeline — runtime,
// sections, tools, benchmark, analysis — the way the cmd binaries and the
// examples do, with assertions on the end-to-end invariants.

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/convolution"
	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/lulesh"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/prof"
	"repro/internal/trace"
)

// TestPipelineConvolutionProfileToBounds: benchmark → profiler → CSV →
// secanalyze-style bound computation, verifying Eq. 6 end to end.
func TestPipelineConvolutionProfileToBounds(t *testing.T) {
	model := machine.NehalemCluster()
	params := convolution.Params{Width: 1024, Height: 512, Steps: 20, Scale: 8, Seed: 5, SkipKernel: true}
	_, seq, err := convolution.Sequential(params, model)
	if err != nil {
		t.Fatal(err)
	}
	profiler := prof.New()
	cfg := mpi.Config{
		Ranks: 16, Model: model, Seed: 5,
		Tools: []mpi.Tool{profiler}, CheckSections: true,
		Timeout: 2 * time.Minute,
	}
	if _, err := convolution.Run(cfg, params); err != nil {
		t.Fatal(err)
	}
	profile, err := profiler.Result()
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip the profile through its CSV codec, as secanalyze does.
	var buf bytes.Buffer
	if err := profile.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := prof.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	speedup := seq / profile.WallTime
	if speedup <= 1 || speedup > 16 {
		t.Fatalf("implausible speedup %g at 16 ranks", speedup)
	}
	checked := 0
	for _, r := range rows {
		if r.AvgPerProc <= 0 {
			continue
		}
		b, err := core.PartialBound(seq, r.AvgPerProc)
		if err != nil {
			t.Fatal(err)
		}
		if b < speedup*(1-1e-9) {
			t.Errorf("section %s bound %g below measured speedup %g", r.Label, b, speedup)
		}
		checked++
	}
	if checked < 5 {
		t.Errorf("only %d sections analyzed", checked)
	}
}

// TestPipelineTraceTimeline: benchmark → trace collector → CSV → timeline.
func TestPipelineTraceTimeline(t *testing.T) {
	collector := trace.NewCollector(0)
	cfg := mpi.Config{
		Ranks: 4, Model: machine.NehalemCluster(), Seed: 2,
		Tools: []mpi.Tool{collector}, Timeout: 2 * time.Minute,
	}
	params := convolution.Params{Width: 256, Height: 128, Steps: 5, Scale: 4, Seed: 2, SkipKernel: true}
	if _, err := convolution.Run(cfg, params); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := collector.Buffer().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := trace.Timeline(events, 80, convolution.SecConvolve, convolution.SecHalo)
	if !strings.Contains(out, "rank    0") || !strings.Contains(out, "rank    3") {
		t.Errorf("timeline missing ranks:\n%s", out)
	}
	if !strings.Contains(out, "=CONVOLVE") {
		t.Errorf("timeline missing legend:\n%s", out)
	}
}

// TestPipelineHybridAdaptive: LULESH thread sweep → controller recommends a
// cap near the measured inflexion (§8 future work, implemented).
func TestPipelineHybridAdaptive(t *testing.T) {
	model := machine.KNL()
	model.Noise = machine.Noise{}
	run := func(threads int) float64 {
		cfg := mpi.Config{
			Ranks: 1, ThreadsPerRank: threads, Model: model, Seed: 3,
			Timeout: 2 * time.Minute,
		}
		params := lulesh.Params{S: 48, Steps: 2, Threads: threads, Scale: 8, SedovEnergy: 1e4}
		res, err := lulesh.Run(cfg, params)
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.WallTime
	}
	ctrl, err := core.NewController(256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20 && !ctrl.Settled(); i++ {
		th := ctrl.Recommend()
		if err := ctrl.Observe(th, run(th)); err != nil {
			t.Fatal(err)
		}
	}
	if !ctrl.Settled() {
		t.Fatal("controller did not settle")
	}
	best := ctrl.Best()
	if best < 8 || best > 64 {
		t.Errorf("controller chose %d threads; expected near the ~24-thread inflexion", best)
	}
	// The chosen cap must actually be no slower than both extremes.
	if run(best) > run(1) || run(best) > run(256) {
		t.Errorf("recommended cap %d is not an improvement", best)
	}
}

// TestPipelineSectionsVsPcontrol: the MPI_Section profiler and the
// IPM-style Pcontrol baseline measure the same phase, but only sections
// carry labels, nesting and cross-rank instance metrics.
func TestPipelineSectionsVsPcontrol(t *testing.T) {
	secProf := prof.New()
	pcProf := prof.NewPcontrol()
	cfg := mpi.Config{
		Ranks: 4, Model: machine.Ideal(4, 1), Seed: 1,
		Tools:   []mpi.Tool{secProf, pcProf},
		Timeout: 2 * time.Minute,
	}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		for i := 0; i < 10; i++ {
			c.Pcontrol(1)
			c.SectionEnter("phase-one")
			c.Sleep(0.05)
			c.SectionExit("phase-one")
			c.Pcontrol(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	profile, err := secProf.Result()
	if err != nil {
		t.Fatal(err)
	}
	sec := profile.Section("phase-one")
	if sec == nil {
		t.Fatal("section missing")
	}
	secTotal := sec.TotalTime()
	pcTotal := pcProf.PhaseTotal(1)
	if math.Abs(secTotal-pcTotal)/secTotal > 1e-9 {
		t.Errorf("section total %g != pcontrol total %g", secTotal, pcTotal)
	}
	// The expressiveness gap: sections know their distributed span and
	// imbalance; Pcontrol cannot (flat, unlabeled, rank-local).
	if sec.Instances != 10 || sec.SpanTotal <= 0 {
		t.Errorf("section instance metrics missing: %+v", sec)
	}
}

// TestPipelineImageIntegrity: the full distributed convolution returns the
// same PPM bytes as the sequential path — storage layer included.
func TestPipelineImageIntegrity(t *testing.T) {
	params := convolution.Params{Width: 96, Height: 64, Steps: 4, Scale: 1, Seed: 9}
	ref, _, err := convolution.Sequential(params, machine.Ideal(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := mpi.Config{Ranks: 8, Model: machine.Ideal(8, 1), Seed: 9, Timeout: 2 * time.Minute}
	res, err := convolution.Run(cfg, params)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := ref.EncodePPM(&a); err != nil {
		t.Fatal(err)
	}
	if err := res.Output.EncodePPM(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("distributed PPM differs from sequential PPM")
	}
	if _, err := img.DecodePPM(&a); err != nil {
		t.Errorf("emitted PPM not decodable: %v", err)
	}
}
