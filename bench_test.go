package repro

// The benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation, plus micro-benchmarks of the runtime primitives and
// the ablations called out in DESIGN.md. Figure benches run reduced sweeps
// per iteration (full, paper-scale sweeps live in cmd/convbench and
// cmd/luleshbench) and report shape metrics via b.ReportMetric so the
// regenerated numbers appear in the -bench output.

import (
	"testing"
	"time"

	"repro/internal/balance"
	"repro/internal/chart"
	"repro/internal/convolution"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/lulesh"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/prof"
)

// benchConvOpts is the figure-bench sweep: larger than the test quick
// sweep, far smaller than the paper-scale cmd run.
func benchConvOpts() experiments.ConvOptions {
	o := experiments.QuickConvOptions()
	o.Ps = []int{4, 8, 16, 32}
	o.Steps = 60
	return o
}

func BenchmarkFig5aSectionShares(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunConvolution(benchConvOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(100*last.Shares[convolution.SecHalo], "halo-share-%")
		b.ReportMetric(100*last.Shares[convolution.SecConvolve], "conv-share-%")
	}
}

func BenchmarkFig5bSectionTotals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunConvolution(benchConvOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.Totals[convolution.SecHalo], "halo-total-s")
	}
}

func BenchmarkFig5cPerProcessTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunConvolution(benchConvOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.AvgPerProc[convolution.SecConvolve], "conv-avg-s")
	}
}

func BenchmarkFig5dSpeedupAndBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunConvolution(benchConvOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Study.Validate(); err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.Speedup, "speedup")
		bounds, err := res.Study.BoundsAt(last.P)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bounds[convolution.SecHalo], "halo-bound")
	}
}

func BenchmarkFig6HaloBoundTable(b *testing.B) {
	o := benchConvOpts()
	o.Ps = []int{16, 32, 64} // the Fig. 6 regime, sized for a bench
	o.Steps = 60
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunConvolution(o)
		if err != nil {
			b.Fatal(err)
		}
		rows := res.Study.BoundTable(convolution.SecHalo)
		if len(rows) == 0 {
			b.Fatal("no bound rows")
		}
		b.ReportMetric(rows[len(rows)-1].Bound, "B(64)")
	}
}

func BenchmarkFig7Table7Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cfg := range lulesh.Table7() {
			p := lulesh.Params{S: cfg.S, Steps: 2, Threads: 1,
				Scale: benchScale(cfg.S), SedovEnergy: 1e4}
			mcfg := mpi.Config{Ranks: cfg.Ranks, Model: machine.KNL(),
				Seed: 1, Timeout: 5 * time.Minute}
			if _, err := lulesh.Run(mcfg, p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchScale(s int) int {
	for _, d := range []int{6, 4, 3, 2} {
		if s%d == 0 && s/d >= 2 {
			return d
		}
	}
	return 1
}

func BenchmarkFig8BroadwellHybrid(b *testing.B) {
	o := experiments.PaperBroadwellOptions()
	o.Threads = []int{1, 8, 64}
	o.Steps = 3
	o.MaxScale = 8
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHybrid(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Point(8, 1).Wall, "mpi8-wall-s")
		b.ReportMetric(res.Point(1, 8).Wall, "omp8-wall-s")
	}
}

func BenchmarkFig9KNLHybrid(b *testing.B) {
	o := experiments.PaperKNLOptions()
	o.Threads = []int{1, 8, 64}
	o.Steps = 3
	o.MaxScale = 8
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHybrid(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Point(27, 8).Wall/res.Point(27, 1).Wall, "p27-omp8-slowdown")
	}
}

func BenchmarkFig10KNLInflexion(b *testing.B) {
	o := experiments.PaperKNLOptions()
	o.Ranks = []int{1}
	o.Threads = []int{1, 2, 4, 8, 16, 24, 32, 48, 64, 128}
	o.Steps = 3
	o.MaxScale = 8
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHybrid(o)
		if err != nil {
			b.Fatal(err)
		}
		a, err := res.AnalyzeFig10()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(a.InflexionThreads), "inflexion-threads")
		b.ReportMetric(a.SpeedupAtInflexion, "speedup-at-inflexion")
		b.ReportMetric(a.LagrangeBound, "lagrange-bound")
	}
}

// --- runtime micro-benchmarks ------------------------------------------------

func BenchmarkRuntimeSendRecv(b *testing.B) {
	cfg := mpi.Config{Ranks: 2, Model: machine.Ideal(2, 1), Seed: 1, Timeout: 10 * time.Minute}
	payload := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < b.N; i++ {
				if err := c.Send(1, 0, payload); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < b.N; i++ {
			buf, _, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			// Recv transfers buffer ownership; returning it to the pool is
			// what keeps the steady state allocation-free.
			mpi.Release(buf)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRuntimeAllreduce64Ranks(b *testing.B) {
	cfg := mpi.Config{Ranks: 64, Model: machine.Ideal(64, 1), Seed: 1, Timeout: 10 * time.Minute}
	b.ReportAllocs()
	b.ResetTimer()
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		for i := 0; i < b.N; i++ {
			if _, err := c.AllreduceFloat64(float64(c.Rank()), mpi.OpSum); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSectionOverhead measures the per-event cost of the MPI_Section
// machinery itself ("minimal section impact", paper §4), without checking
// and without tools.
func BenchmarkSectionOverhead(b *testing.B) {
	benchSections(b, false, false)
}

// BenchmarkSectionOverheadChecked is the ablation with the collective
// invariant verification enabled.
func BenchmarkSectionOverheadChecked(b *testing.B) {
	benchSections(b, true, false)
}

// BenchmarkSectionOverheadProfiled adds the full profiler tool.
func BenchmarkSectionOverheadProfiled(b *testing.B) {
	benchSections(b, false, true)
}

func benchSections(b *testing.B, checked, profiled bool) {
	cfg := mpi.Config{Ranks: 4, Model: machine.Ideal(4, 1), Seed: 1,
		CheckSections: checked, Timeout: 10 * time.Minute}
	if profiled {
		cfg.Tools = []mpi.Tool{prof.New()}
	}
	b.ResetTimer()
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		for i := 0; i < b.N; i++ {
			c.SectionEnter("bench")
			c.SectionExit("bench")
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkConvolutionStep(b *testing.B) {
	p := convolution.Params{Width: 512, Height: 256, Steps: 1, Scale: 1, Seed: 1}
	cfg := mpi.Config{Ranks: 4, Model: machine.Ideal(4, 1), Seed: 1, Timeout: 10 * time.Minute}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := convolution.Run(cfg, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLuleshStepSequential(b *testing.B) {
	cfg := mpi.Config{Ranks: 1, Model: machine.Ideal(1, 1), Seed: 1, Timeout: 10 * time.Minute}
	p := lulesh.Params{S: 16, Steps: 1, Threads: 1, Scale: 1, SedovEnergy: 1e4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lulesh.Run(cfg, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecompAblation regenerates the §3 1-D vs 2-D comparison at one
// scale and reports the modeled byte ratio and measured HALO ratio.
func BenchmarkDecompAblation(b *testing.B) {
	o := experiments.QuickDecompOptions()
	o.Ps = []int{16}
	o.Steps = 30
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDecompComparison(o)
		if err != nil {
			b.Fatal(err)
		}
		pt := res.Points[0]
		b.ReportMetric(float64(pt.Bytes1D)/float64(pt.Bytes2D), "byte-ratio-1d/2d")
		b.ReportMetric(pt.Halo1D/pt.Halo2D, "halo-ratio-1d/2d")
	}
}

// BenchmarkWeakScaling regenerates the Gustafson sweep and reports the
// scaled speedup at the largest point.
func BenchmarkWeakScaling(b *testing.B) {
	o := experiments.QuickWeakOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunWeakConvolution(o)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.ScaledSpeedup, "scaled-speedup")
		b.ReportMetric(last.Efficiency, "weak-efficiency")
	}
}

// BenchmarkBalanceAnalysis measures the §8 load-balance analysis over a
// profiled run.
func BenchmarkBalanceAnalysis(b *testing.B) {
	profiler := prof.New()
	cfg := mpi.Config{Ranks: 16, Model: machine.Ideal(16, 1), Seed: 1,
		Tools: []mpi.Tool{profiler}, Timeout: 10 * time.Minute}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		for i := 0; i < 50; i++ {
			c.SectionEnter("phase")
			c.Sleep(1 + 0.1*float64(c.Rank()))
			c.SectionExit("phase")
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	profile, err := profiler.Result()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := balance.AnalyzeProfile(profile); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChartRender measures the ASCII figure renderer.
func BenchmarkChartRender(b *testing.B) {
	var xs, ys []float64
	for p := 1; p <= 512; p *= 2 {
		xs = append(xs, float64(p))
		ys = append(ys, 1000.0/float64(p)+0.1*float64(p))
	}
	s := chart.Series{Name: "t", X: xs, Y: ys}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chart.Render(chart.Options{LogX: true, LogY: true}, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveController exercises the §8 extension end to end.
func BenchmarkAdaptiveController(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctrl, err := core.NewController(256)
		if err != nil {
			b.Fatal(err)
		}
		for !ctrl.Settled() {
			th := ctrl.Recommend()
			_ = ctrl.Observe(th, 100.0/float64(th)+0.5*float64(th))
		}
		b.ReportMetric(float64(ctrl.Best()), "chosen-threads")
	}
}
