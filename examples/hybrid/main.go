// Hybrid example: measure OpenMP scaling of the LULESH proxy purely from
// MPI-level sections (the paper's §5.2 headline), then let the adaptive
// controller of the paper's future-work section pick the team size.
//
// Run with:
//
//	go run ./examples/hybrid
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/lulesh"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/prof"
)

func runOnce(model *machine.Model, threads int) (wall, nodal, elements float64, err error) {
	profiler := prof.New()
	cfg := mpi.Config{
		Ranks:          1,
		ThreadsPerRank: threads,
		Model:          model,
		Seed:           11,
		Tools:          []mpi.Tool{profiler},
		Timeout:        5 * time.Minute,
	}
	params := lulesh.Params{S: 48, Steps: 5, Threads: threads, Scale: 8, SedovEnergy: 1e4}
	if _, err = lulesh.Run(cfg, params); err != nil {
		return 0, 0, 0, err
	}
	profile, err := profiler.Result()
	if err != nil {
		return 0, 0, 0, err
	}
	return profile.WallTime,
		profile.Section(lulesh.SecNodal).AvgPerProcess(),
		profile.Section(lulesh.SecElements).AvgPerProcess(),
		nil
}

func main() {
	log.SetFlags(0)
	model := machine.KNL()
	model.Noise = machine.Noise{} // deterministic demo

	fmt.Println("OpenMP scaling of the two Lagrange phases, observed from MPI sections only (KNL, s=48):")
	fmt.Printf("%8s %10s %14s %16s %9s\n", "threads", "walltime", "LagrangeNodal", "LagrangeElements", "speedup")
	var seq float64
	threadSet := []int{1, 2, 4, 8, 16, 24, 32, 64, 128}
	walls := make([]float64, 0, len(threadSet))
	for _, th := range threadSet {
		wall, nodal, elements, err := runOnce(model, th)
		if err != nil {
			log.Fatal(err)
		}
		if th == 1 {
			seq = wall
		}
		walls = append(walls, wall)
		fmt.Printf("%8d %10.4g %14.4g %16.4g %9.4g\n", th, wall, nodal, elements, seq/wall)
	}

	idx := core.InflexionIndex(walls)
	fmt.Printf("\ninflexion point at %d threads (S = %.3g×): beyond it, threads only add overhead.\n",
		threadSet[idx], seq/walls[idx])

	// The paper's §8 proposal: restrain parallelism dynamically.
	ctrl, err := core.NewController(256)
	if err != nil {
		log.Fatal(err)
	}
	evals := 0
	for !ctrl.Settled() {
		th := ctrl.Recommend()
		wall, _, _, err := runOnce(model, th)
		if err != nil {
			log.Fatal(err)
		}
		if err := ctrl.Observe(th, wall); err != nil {
			log.Fatal(err)
		}
		evals++
	}
	fmt.Printf("adaptive controller settled on %d threads after %d probe runs.\n",
		ctrl.Best(), evals)
}
