// Quickstart: outline phases of a small MPI stencil program with
// MPI_Sections, profile them, and compute the partial speedup bounds of
// Eq. 6 — the complete workflow of the paper in ~100 lines.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/prof"
)

const (
	ranks = 16
	steps = 200
	cells = 1 << 20 // total 1-D stencil cells
)

// stencilStep runs one Jacobi-style relaxation over the rank's chunk and
// exchanges boundary values with its neighbors.
func stencilStep(c *mpi.Comm, chunk []float64) error {
	// HALO: exchange edge cells with both neighbors.
	err := c.Section("HALO", func() error {
		left, right := c.Rank()-1, c.Rank()+1
		if left >= 0 {
			got, _, err := c.SendrecvFloat64s(left, 0, chunk[:1], left, 1)
			if err != nil {
				return err
			}
			chunk[0] = (chunk[0] + got[0]) / 2
		}
		if right < c.Size() {
			got, _, err := c.SendrecvFloat64s(right, 1, chunk[len(chunk)-1:], right, 0)
			if err != nil {
				return err
			}
			chunk[len(chunk)-1] = (chunk[len(chunk)-1] + got[0]) / 2
		}
		return nil
	})
	if err != nil {
		return err
	}
	// COMPUTE: relax the interior; charge ~8 flops and 16 bytes per cell.
	return c.Section("COMPUTE", func() error {
		for i := 1; i < len(chunk)-1; i++ {
			chunk[i] = 0.25*chunk[i-1] + 0.5*chunk[i] + 0.25*chunk[i+1]
		}
		c.Compute(mpi.WorkUnit{Flops: 8 * float64(len(chunk)), Bytes: 16 * float64(len(chunk))})
		return nil
	})
}

func main() {
	log.SetFlags(0)
	profiler := prof.New()
	cfg := mpi.Config{
		Ranks:         ranks,
		Model:         machine.NehalemCluster(),
		Seed:          42,
		Tools:         []mpi.Tool{profiler},
		CheckSections: true,
		Timeout:       2 * time.Minute,
	}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		chunk := make([]float64, cells/c.Size())
		for i := range chunk {
			chunk[i] = float64(c.Rank()) // arbitrary initial data
		}
		for s := 0; s < steps; s++ {
			if err := stencilStep(c, chunk); err != nil {
				return err
			}
		}
		// REDUCE: a global result, so the run ends with a collective.
		_, err := c.AllreduceFloat64(chunk[0], mpi.OpSum)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	profile, err := profiler.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== section profile (Fig. 3 metrics) ===")
	fmt.Println(profile.Table())

	// Partial speedup bounding: the sequential baseline is the same work
	// on one core of the same machine.
	model := machine.NehalemCluster()
	seq := model.SerialComputeTime(mpi.WorkUnit{
		Flops: 8 * cells * steps, Bytes: 16 * cells * steps,
	})
	fmt.Printf("modeled sequential time: %.4g s, measured walltime: %.4g s → speedup %.4g×\n\n",
		seq, profile.WallTime, seq/profile.WallTime)

	fmt.Println("=== partial speedup bounds (Eq. 6) ===")
	for _, label := range []string{"COMPUTE", "HALO"} {
		s := profile.Section(label)
		b, err := core.PartialBound(seq, s.AvgPerProcess())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s avg/proc %.4g s → bound %.5g×\n", label, s.AvgPerProcess(), b)
	}
	fmt.Println("\nthe tightest bound names the section that will cap strong scaling first.")
}
