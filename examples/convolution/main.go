// Convolution example: run the paper's §5.1 image-convolution benchmark at
// one scale with real pixel data, verify the distributed result against the
// sequential reference, and print the section breakdown plus the HALO
// partial bound.
//
// Run with:
//
//	go run ./examples/convolution
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/convolution"
	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/prof"
)

func main() {
	log.SetFlags(0)
	const p = 32
	params := convolution.Params{
		Width: 5616, Height: 3744, // the paper's full image, for all costs
		Steps: 25,
		Scale: 16, // really execute a 351×234 replica
		Seed:  7,
	}
	model := machine.NehalemCluster()

	// Sequential reference (real pixels) and modeled baseline time.
	ref, seqTime, err := convolution.Sequential(params, model)
	if err != nil {
		log.Fatal(err)
	}

	profiler := prof.New()
	cfg := mpi.Config{
		Ranks:         p,
		Model:         model,
		Seed:          7,
		Tools:         []mpi.Tool{profiler},
		CheckSections: true,
		Timeout:       5 * time.Minute,
	}
	res, err := convolution.Run(cfg, params)
	if err != nil {
		log.Fatal(err)
	}
	diff, err := img.MaxAbsDiff(ref, res.Output)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed vs sequential max |Δ| = %g (bit-exact expected)\n\n", diff)

	profile, err := profiler.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(profile.Table())

	halo := profile.Section(convolution.SecHalo)
	bound, err := core.PartialBound(seqTime, halo.AvgPerProcess())
	if err != nil {
		log.Fatal(err)
	}
	speedup := seqTime / profile.WallTime
	fmt.Printf("modeled sequential: %.5g s | wall at p=%d: %.5g s | speedup %.4g×\n",
		seqTime, p, profile.WallTime, speedup)
	fmt.Printf("HALO partial bound B(%d) = %.5g× — communication caps scaling well before Amdahl would\n",
		p, bound)
}
