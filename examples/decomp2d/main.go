// Decomposition example: the §3 halo-volume trade-off, measured. Runs the
// convolution benchmark with 1-D row and 2-D tile decompositions at the
// same scales, verifies both against the sequential reference, and charts
// the HALO sections — showing the latency-dominated regime where fewer,
// larger messages win and the bandwidth-dominated regime where the 2-D
// split's smaller halo volume takes over.
//
// Run with:
//
//	go run ./examples/decomp2d
package main

import (
	"fmt"
	"log"

	"repro/internal/chart"
	"repro/internal/convolution"
	"repro/internal/experiments"
	"repro/internal/img"
	"repro/internal/machine"
	"repro/internal/mpi"
)

func main() {
	log.SetFlags(0)

	// Correctness first: both decompositions equal the sequential filter
	// bit for bit on real pixels.
	p := convolution.Params{Width: 64, Height: 48, Steps: 5, Scale: 1, Seed: 31}
	ref, _, err := convolution.Sequential(p, machine.Ideal(1, 1))
	if err != nil {
		log.Fatal(err)
	}
	for name, run := range map[string]func(mpi.Config, convolution.Params) (*convolution.Result, error){
		"1-D": convolution.Run, "2-D": convolution.Run2D,
	} {
		cfg := mpi.Config{Ranks: 4, Model: machine.Ideal(4, 1), Seed: 1}
		res, err := run(cfg, p)
		if err != nil {
			log.Fatal(err)
		}
		d, err := img.MaxAbsDiff(ref, res.Output)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s decomposition vs sequential: max |Δ| = %g\n", name, d)
	}
	fmt.Println()

	// Now the measured comparison on the cluster model.
	opts := experiments.QuickDecompOptions()
	opts.Ps = []int{4, 16, 64, 256}
	opts.Steps = 60
	opts.Scale = 8 // the 256-rank grid needs the larger executed image
	res, err := experiments.RunDecompComparison(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table())

	var ps, h1, h2 []float64
	for _, pt := range res.Points {
		ps = append(ps, float64(pt.P))
		h1 = append(h1, pt.Halo1D)
		h2 = append(h2, pt.Halo2D)
	}
	plot, err := chart.Render(chart.Options{
		Title:  "HALO time per process: 1-D rows vs 2-D tiles",
		LogX:   true,
		LogY:   true,
		XLabel: "MPI processes",
		YLabel: "seconds",
	},
		chart.Series{Name: "1-D", X: ps, Y: h1},
		chart.Series{Name: "2-D", X: ps, Y: h2},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plot)
	fmt.Println("fewer bytes ≠ faster until the switch saturates — which is why the paper")
	fmt.Println("wants HALO measured as a section rather than modeled as constant.")
}
