// Load-balance example: the Fig. 3 metrics in action. A deliberately skewed
// workload shows how a section's entry imbalance (imb_in = Tin − Tmin) and
// section imbalance (imb = (Tmax − Tmin) − Tsection) expose the imbalance
// that per-function profiles hide, and how an ASCII timeline renders it.
//
// Run with:
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/balance"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/prof"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	const p = 8
	profiler := prof.New()
	collector := trace.NewCollector(0)
	matrix := prof.NewCommMatrix()
	cfg := mpi.Config{
		Ranks:         p,
		Model:         machine.NehalemCluster(),
		Seed:          3,
		Tools:         []mpi.Tool{profiler, collector, matrix},
		CheckSections: true,
		Timeout:       2 * time.Minute,
	}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		for step := 0; step < 3; step++ {
			// COMPUTE: rank r gets (1 + r/4) units of work — a classic
			// linear skew.
			err := c.Section("COMPUTE", func() error {
				w := 1 + float64(c.Rank())/4
				c.Compute(mpi.WorkUnit{Flops: w * 2e9})
				return nil
			})
			if err != nil {
				return err
			}
			// SYNC: the barrier converts the skew into wait time —
			// "loosely synchronized MPI ranks may avoid an MPI_Barrier
			// call which would convert the imbalance in a parallel
			// synchronization cost" (paper §4).
			if err := c.Section("SYNC", c.Barrier); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	profile, err := profiler.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(profile.Table())

	comp := profile.Section("COMPUTE")
	sync := profile.Section("SYNC")
	fmt.Printf("COMPUTE: load imbalance (max/mean−1) = %.3g, mean entry imbalance = %.4g s\n",
		comp.LoadImbalance(), comp.EntryImb.Mean())
	fmt.Printf("SYNC:    the same imbalance reappears as wait: avg %.4g s per rank per step\n",
		sync.Dur.Mean())
	fmt.Printf("COMPUTE section imbalance imb = (Tmax−Tmin)−Tsection averages %.4g s\n\n",
		comp.Imb.Mean())

	if w := collector.Warning(); w != "" {
		fmt.Println(w)
	}
	fmt.Println("timeline (A=COMPUTE, B=SYNC — note the growing B share on low ranks):")
	fmt.Print(trace.Timeline(collector.Buffer().Filter(func(e trace.Event) bool {
		return e.Label == "COMPUTE" || e.Label == "SYNC"
	}), 96))

	// The §8 load-balance analysis: persistent vs transient decomposition,
	// outlier ranks, heat strips.
	fmt.Println("\n=== load-balance analysis (paper §8, implemented) ===")
	report, err := balance.Report(profile, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)
	analyses, err := balance.AnalyzeProfile(profile)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range analyses {
		if a.Label == "COMPUTE" {
			fmt.Println("verdict:", a.Verdict())
		}
	}

	// The barrier traffic pattern, as a communication matrix (IPM's view).
	fmt.Println()
	fmt.Print(matrix.Render())
}
